"""Tests for the unified planning API: PlanSpec, Planner, persistence.

The contract under test is the one the serving stack's warm-start rests on:
a spec is a pure, serializable description of "the plan I need"; spec ->
json -> spec is an identity; cache keys are stable across processes; and a
PlanCache dump only loads against the tile database it was built for.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import (
    PLAN_KINDS,
    KernelChoice,
    PlanCache,
    PlanCacheLoadError,
    Planner,
    PlanSpec,
    ResolvedPlan,
    TileDB,
    choice_from_json,
    choice_to_json,
    kernel_selection,
)
from repro.core.plan import decode_value, encode_value
from repro.hw import A100, V100
from repro.sparsity import granular_mask


@pytest.fixture(scope="module")
def tiledb():
    return TileDB.shared(V100, "float32")


def make_spec(tiledb, **overrides):
    kwargs = dict(
        kind="proj", m=128, k=64, n=64, sparse_operand="A",
        signature=(7, 20, 20), tiledb_key=tiledb.cache_key,
    )
    kwargs.update(overrides)
    return PlanSpec(**kwargs)


class TestPlanSpec:
    def test_json_round_trip_is_identity(self, tiledb):
        spec = make_spec(tiledb)
        revived = PlanSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert revived == spec
        assert hash(revived) == hash(spec)
        assert revived.cache_key() == spec.cache_key()

    def test_round_trip_preserves_every_field(self, tiledb):
        spec = make_spec(
            tiledb, kind="attention", sparse_operand="B",
            signature=(2048, 3, ("nested", 1)), include_dense_fallback=False,
        )
        revived = PlanSpec.from_json(spec.to_json())
        assert revived == spec
        assert revived.include_dense_fallback is False

    def test_signature_lists_normalize_to_tuples(self, tiledb):
        a = make_spec(tiledb, signature=[7, 20, 20])
        b = make_spec(tiledb, signature=(7, 20, 20))
        assert a == b and hash(a) == hash(b)

    def test_invalid_kind_rejected(self, tiledb):
        with pytest.raises(ValueError, match="kind"):
            make_spec(tiledb, kind="conv")
        assert set(PLAN_KINDS) == {
            "proj",
            "ffn-act",
            "attention",
            "moe-grouped",
            "weight-sparse",
            "nm-sparse",
        }

    def test_invalid_dims_and_operand_rejected(self, tiledb):
        with pytest.raises(ValueError, match="dims"):
            make_spec(tiledb, m=0)
        with pytest.raises(ValueError, match="sparse_operand"):
            make_spec(tiledb, sparse_operand="C")

    def test_sample_shape_follows_operand(self, tiledb):
        assert make_spec(tiledb).sample_shape == (128, 64)
        assert make_spec(tiledb, sparse_operand="B").sample_shape == (64, 64)

    def test_specs_differing_only_in_signature_are_distinct(self, tiledb):
        a = make_spec(tiledb, signature=(7,))
        b = make_spec(tiledb, signature=(8,))
        assert a != b
        assert a.cache_key() != b.cache_key()

    def test_cache_key_stable_across_processes(self, tiledb):
        """The persistence property: an identically described spec built in
        a different interpreter encodes to the identical cache key."""
        src_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        code = (
            "import json\n"
            "from repro.core import PlanSpec, TileDB\n"
            "from repro.hw import V100\n"
            "db = TileDB.shared(V100, 'float32')\n"
            "from repro.core.plan import encode_value\n"
            "spec = PlanSpec(kind='proj', m=128, k=64, n=64,\n"
            "                signature=(7, 20, 20), tiledb_key=db.cache_key)\n"
            "print(json.dumps(encode_value(spec.cache_key())))\n"
        )
        env = dict(os.environ, PYTHONPATH=src_dir)
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        theirs = out.stdout.strip()
        mine = json.dumps(encode_value(make_spec(tiledb).cache_key()))
        assert theirs == mine
        # And the decoded key compares equal to the in-process key.
        assert decode_value(json.loads(theirs)) == make_spec(tiledb).cache_key()


class TestChoiceSerialization:
    def test_choice_round_trip(self, tiledb):
        mask = granular_mask((256, 256), (8, 1), 0.95, seed=0)
        choice = kernel_selection([mask], 256, 256, 256, tiledb)
        revived = choice_from_json(
            json.loads(json.dumps(choice_to_json(choice)))
        )
        assert isinstance(revived, KernelChoice)
        assert revived == choice

    def test_dense_fallback_round_trip(self, tiledb):
        choice = kernel_selection(
            [np.ones((128, 128), dtype=bool)], 128, 128, 128, tiledb
        )
        assert choice.is_dense_fallback
        revived = choice_from_json(choice_to_json(choice))
        assert revived.is_dense_fallback
        assert revived == choice


class TestPlanner:
    def test_cold_then_warm_resolve(self, tiledb):
        planner = Planner(tiledb)
        mask = granular_mask((256, 256), (8, 1), 0.95, seed=0)
        spec = planner.make_spec("proj", [mask], 256, 256, 256)
        cold = planner.resolve(spec, lambda: [mask])
        warm = planner.resolve(spec)
        assert isinstance(cold, ResolvedPlan)
        assert cold.cold and not warm.cold
        assert warm.choice is cold.choice
        assert planner.cache.hits == 1 and planner.cache.misses == 1
        assert cold.search_us > warm.search_us

    def test_cold_resolve_without_samples_raises(self, tiledb):
        planner = Planner(tiledb)
        with pytest.raises(ValueError, match="make_samples"):
            planner.resolve(make_spec(tiledb))

    def test_resolve_rejects_foreign_tiledb_spec(self, tiledb):
        planner = Planner(tiledb)
        other = TileDB.shared(A100, "float32")
        spec = make_spec(other)
        with pytest.raises(ValueError, match="tile database"):
            planner.resolve(spec, lambda: [np.ones((128, 64), dtype=bool)])

    def test_make_spec_quantizes_alike_samples_to_one_spec(self, tiledb):
        planner = Planner(tiledb)
        m1 = granular_mask((256, 256), (8, 1), 0.95, seed=0)
        m2 = granular_mask((256, 256), (8, 1), 0.95, seed=9)
        assert not np.array_equal(m1, m2)
        s1 = planner.make_spec("proj", [m1], 256, 256, 256)
        s2 = planner.make_spec("proj", [m2], 256, 256, 256)
        assert s1 == s2

    def test_resolve_records_device_provenance(self, tiledb):
        """Plans are device-specific: the resolved plan names the device
        class whose tile database it was selected against, hit or miss."""
        planner = Planner(tiledb)
        mask = granular_mask((256, 256), (8, 1), 0.95, seed=0)
        spec = planner.make_spec("proj", [mask], 256, 256, 256)
        cold = planner.resolve(spec, lambda: [mask])
        warm = planner.resolve(spec)
        assert cold.device == tiledb.spec.name
        assert warm.device == tiledb.spec.name

    def test_memo_keys_never_collide_with_plans(self, tiledb):
        planner = Planner(tiledb)
        mask = granular_mask((256, 256), (8, 1), 0.95, seed=0)
        spec = planner.make_spec("proj", [mask], 256, 256, 256)
        planner.resolve(spec, lambda: [mask])
        value = planner.memo(spec, lambda: (0.25, 4.0))
        assert value == (0.25, 4.0)
        assert planner.memo(spec, lambda: pytest.fail("recompute")) == value
        assert planner.resolve(spec).choice is not None


class TestPlanCachePersistence:
    def _populated(self, tiledb):
        planner = Planner(tiledb)
        mask = granular_mask((256, 256), (8, 1), 0.95, seed=0)
        spec = planner.make_spec("proj", [mask], 256, 256, 256)
        resolved = planner.resolve(spec, lambda: [mask])
        planner.memo(spec, lambda: (0.5, 2.0))
        return planner, spec, resolved

    def test_save_load_round_trip(self, tiledb, tmp_path):
        planner, spec, resolved = self._populated(tiledb)
        path = tmp_path / "plans.json"
        stats = planner.cache.save(path, tiledb_key=tiledb.cache_key)
        assert stats == {"entries": 2, "skipped": 0, "aged_out": 0}

        loaded = PlanCache.load(path, expected_tiledb_key=tiledb.cache_key)
        assert len(loaded) == 2
        assert loaded.hits == 0 and loaded.misses == 0
        warm = Planner(tiledb, loaded)
        revived = warm.resolve(spec)
        assert not revived.cold
        assert revived.choice == resolved.choice
        assert warm.memo(spec, lambda: pytest.fail("recompute")) == (0.5, 2.0)
        assert loaded.misses == 0

    def test_load_rejects_different_tiledb_key(self, tiledb, tmp_path):
        planner, _, _ = self._populated(tiledb)
        path = tmp_path / "plans.json"
        planner.cache.save(path, tiledb_key=tiledb.cache_key)
        other = TileDB.shared(A100, "float32")
        with pytest.raises(ValueError, match="does not match"):
            PlanCache.load(path, expected_tiledb_key=other.cache_key)
        # Without an expectation the dump loads (caller's responsibility).
        assert len(PlanCache.load(path)) == 2

    def test_load_rejects_unknown_format(self, tiledb, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"format": 99, "entries": []}))
        with pytest.raises(ValueError, match="format"):
            PlanCache.load(path)

    def test_save_skips_unserializable_entries(self, tiledb, tmp_path):
        planner, _, _ = self._populated(tiledb)
        planner.cache.put(("ad-hoc",), object())
        path = tmp_path / "plans.json"
        stats = planner.cache.save(path, tiledb_key=tiledb.cache_key)
        assert stats["skipped"] == 1
        assert len(PlanCache.load(path)) == 2

    def test_dump_preserves_capacity_and_quantum(self, tiledb, tmp_path):
        cache = PlanCache(capacity=17, quantum=0.1)
        path = tmp_path / "plans.json"
        cache.save(path, tiledb_key=tiledb.cache_key)
        loaded = PlanCache.load(path)
        assert loaded.capacity == 17
        assert loaded.quantum == 0.1

    def test_load_raises_load_error_on_truncated_dump(self, tiledb, tmp_path):
        planner, _, _ = self._populated(tiledb)
        path = tmp_path / "plans.json"
        planner.cache.save(path, tiledb_key=tiledb.cache_key)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # a torn write
        with pytest.raises(PlanCacheLoadError, match="not valid JSON"):
            PlanCache.load(path)
        # The distinguished subclass still reads as ValueError to old code.
        with pytest.raises(ValueError):
            PlanCache.load(path)

    def test_load_raises_load_error_on_missing_header(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"format": PlanCache.DUMP_FORMAT}))
        with pytest.raises(PlanCacheLoadError, match="tiledb_key"):
            PlanCache.load(path)

    def test_load_raises_load_error_on_undecodable_entry(
        self, tiledb, tmp_path
    ):
        planner, _, _ = self._populated(tiledb)
        path = tmp_path / "plans.json"
        planner.cache.save(path, tiledb_key=tiledb.cache_key)
        payload = json.loads(path.read_text())
        payload["entries"][0] = {"key": None}  # no value, junk key
        path.write_text(json.dumps(payload))
        with pytest.raises(PlanCacheLoadError, match="entry 0"):
            PlanCache.load(path)

    def test_load_raises_load_error_on_non_object_dump(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(PlanCacheLoadError, match="JSON object"):
            PlanCache.load(path)

    def test_incompatible_but_wellformed_dumps_stay_plain_valueerror(
        self, tiledb, tmp_path
    ):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"format": 99, "entries": []}))
        with pytest.raises(ValueError) as excinfo:
            PlanCache.load(path)
        assert not isinstance(excinfo.value, PlanCacheLoadError)

    def test_save_is_atomic_under_a_torn_write(
        self, tiledb, tmp_path, monkeypatch
    ):
        planner, spec, _ = self._populated(tiledb)
        path = tmp_path / "plans.json"
        planner.cache.save(path, tiledb_key=tiledb.cache_key)
        good = path.read_text()

        # A dump that dies mid-write (full disk, killed process, codec
        # bug) must leave the existing good dump untouched: save writes a
        # temp file and renames only on success.
        def torn_dump(payload, f, **kwargs):
            f.write('{"format":')
            raise OSError("no space left on device")

        monkeypatch.setattr(json, "dump", torn_dump)
        with pytest.raises(OSError, match="no space"):
            planner.cache.save(path, tiledb_key=tiledb.cache_key)
        monkeypatch.undo()

        assert path.read_text() == good
        assert not list(tmp_path.glob("*.tmp"))
        revived = PlanCache.load(path, expected_tiledb_key=tiledb.cache_key)
        assert len(revived) == 2

    def test_save_replaces_an_existing_dump_in_place(self, tiledb, tmp_path):
        planner, _, _ = self._populated(tiledb)
        path = tmp_path / "plans.json"
        path.write_text("stale contents from a previous run")
        planner.cache.save(path, tiledb_key=tiledb.cache_key)
        assert len(PlanCache.load(path)) == 2
        assert not list(tmp_path.glob("*.tmp"))


class TestCodec:
    def test_nested_structures_round_trip(self, tiledb):
        key = ("plan", "proj", 1, 2.5, None, True, ("x", (3,)), V100)
        assert decode_value(json.loads(json.dumps(encode_value(key)))) == key

    def test_gpuspec_round_trip_hashes_equal(self):
        revived = decode_value(encode_value(V100))
        assert revived == V100 and hash(revived) == hash(V100)

    def test_unserializable_raises_typeerror(self):
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            decode_value({"unknown": 1})
