"""Tests for the continuous-batching scheduler and replica placement."""

import pytest

from repro.core import PlanCache
from repro.hw import V100
from repro.models import bert_workload, longformer_workload
from repro.runtime import ContinuousScheduler, ServingEngine


def make_engine(**kwargs):
    defaults = dict(
        max_batch_tokens=8192,
        max_batch_size=8,
        batch_window_us=2000.0,
        enforce_memory=False,
    )
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


class TestWindowClosure:
    def test_arrivals_within_window_share_a_batch(self):
        engine = make_engine(batch_window_us=2000.0)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=1500.0)
        report = engine.run(policy="continuous")
        assert len(report.batches) == 1
        assert report.batches[0].size == 2

    def test_window_deadline_closes_the_batch(self):
        """An arrival after the window lands in a fresh batch even though
        budget and size cap would have admitted it.

        Overlap is disabled so close time equals compute start: with the
        speculative search on, a cold batch starts when the search tail
        finishes (asserted separately in TestSelectionOverlap)."""
        engine = make_engine(batch_window_us=1000.0, overlap_selection=False)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=1500.0)
        report = engine.run(policy="continuous")
        assert [b.size for b in report.batches] == [1, 1]
        # The first batch closed at its deadline, not at the second arrival.
        assert report.batches[0].start_us == pytest.approx(1000.0)

    def test_arrival_exactly_at_deadline_rides_the_batch(self):
        engine = make_engine(batch_window_us=1000.0)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=1000.0)
        report = engine.run(policy="continuous")
        assert [b.size for b in report.batches] == [2]

    def test_no_window_closes_only_at_end_of_stream(self):
        engine = make_engine(batch_window_us=None)
        for s in range(4):
            engine.submit(bert_workload("mnli", 4, seed=s),
                          arrival_us=s * 10000.0)
        report = engine.run(policy="continuous")
        assert [b.size for b in report.batches] == [4]
        # Nothing to wait for once the stream ends: the batch closes at the
        # last arrival, not at infinity.
        assert report.batches[0].start_us == pytest.approx(30000.0)

    def test_size_cap_closes_immediately(self):
        """A full batch dispatches at the filling arrival — waiting out the
        window could only add queueing delay.  (Overlap off: the start-time
        assertion needs close time == compute start on a cold cache.)"""
        engine = make_engine(max_batch_size=2, batch_window_us=50000.0,
                             overlap_selection=False)
        for s in range(4):
            engine.submit(bert_workload("mnli", 4, seed=s),
                          arrival_us=s * 100.0)
        report = engine.run(policy="continuous")
        assert [b.size for b in report.batches] == [2, 2]
        # Closed by the cap at the second arrival, far before the window.
        assert report.batches[0].start_us == pytest.approx(100.0)

    def test_budget_saturated_batch_closes_immediately(self):
        """A lone request already over the token budget cannot ever admit a
        partner — it must dispatch at arrival, not wait out the window.
        (Overlap off: the start-time assertion needs close time == compute
        start on a cold cache.)"""
        engine = make_engine(max_batch_tokens=64, batch_window_us=5000.0,
                             overlap_selection=False)
        # bert mnli batch 4 pads to ~184 tokens, over the 64-token budget.
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=100.0)
        report = engine.run(policy="continuous")
        assert [b.size for b in report.batches] == [1]
        assert report.batches[0].start_us == pytest.approx(100.0)
        assert report.requests[0].queue_us == pytest.approx(0.0)

    def test_budget_overflow_opens_a_fresh_batch_with_fresh_window(self):
        """A stale deadline from a closed batch must not close its
        successor (the open-batch token check)."""
        # Seeds 0/1/2 pad to 368/660 tokens for 2/3 co-batched requests:
        # two fit the 500-token budget, three overflow.
        engine = make_engine(max_batch_tokens=500, batch_window_us=1000.0)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=10.0)
        engine.submit(bert_workload("mnli", 4, seed=2), arrival_us=20.0)
        # Arrives after the first batch's (stale) deadline at 1000 but
        # within the successor batch's window (opened at 20).
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=1005.0)
        report = engine.run(policy="continuous")
        assert [b.size for b in report.batches] == [2, 2]


class TestReplicaPlacement:
    def test_least_loaded_placement_spreads_batches(self):
        engine = make_engine(replicas=2, max_batch_size=1,
                             batch_window_us=100.0)
        for s in range(4):
            engine.submit(bert_workload("mnli", 8, seed=s), arrival_us=0.0)
        report = engine.run(policy="continuous")
        used = [b.replica_id for b in report.batches]
        assert sorted(set(used)) == [0, 1]
        # Simultaneous closures alternate: each dispatch picks the replica
        # that frees up earliest (ties break toward the lowest id).
        assert used[0] == 0 and used[1] == 1

    def test_replicas_cut_makespan_under_backlog(self):
        def serve(replicas):
            cache = PlanCache()
            engine = make_engine(replicas=replicas, max_batch_size=1,
                                 batch_window_us=0.0, plan_cache=cache)
            for s in range(8):
                engine.submit(bert_workload("mnli", 8, seed=s % 2),
                              arrival_us=0.0)
            # Warm once so measured exec is not dominated by cold searches.
            engine.run(policy="continuous")
            for s in range(8):
                engine.submit(bert_workload("mnli", 8, seed=s % 2),
                              arrival_us=0.0)
            return engine.run(policy="continuous")

        single = serve(1)
        quad = serve(4)
        assert quad.makespan_us < single.makespan_us

    def test_replica_stats_account_all_batches(self):
        engine = make_engine(replicas=3)
        for s in range(6):
            engine.submit(bert_workload("mnli", 4, seed=s),
                          arrival_us=s * 3000.0)
        report = engine.run(policy="continuous")
        assert len(report.replica_stats) == 3
        assert sum(s.batches for s in report.replica_stats) == len(report.batches)
        assert sum(s.tokens for s in report.replica_stats) == report.total_tokens
        assert sum(s.busy_us for s in report.replica_stats) == pytest.approx(
            sum(b.exec_us for b in report.batches)
        )
        for s in report.replica_stats:
            assert 0.0 <= s.utilization <= 1.0

    def test_describe_mentions_replicas(self):
        engine = make_engine(replicas=2)
        engine.submit(bert_workload("mnli", 4, seed=0))
        report = engine.run(policy="continuous")
        assert "replicas: 2" in report.describe()


class TestSharedPlanCache:
    def test_cold_search_on_one_replica_warms_all(self):
        """Same-signature batches landing on different replicas pay the
        Algorithm 1 search exactly once — the cache is engine-wide, not
        per-replica."""
        cache = PlanCache()
        engine = make_engine(replicas=4, max_batch_size=1,
                             batch_window_us=0.0, plan_cache=cache)
        for _ in range(8):
            engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        report = engine.run(policy="continuous")
        assert len({b.replica_id for b in report.batches}) == 4
        cold = [b for b in report.batches if b.cache_misses > 0]
        assert len(cold) == 1

    def test_scaling_out_adds_no_cold_searches(self):
        cache = PlanCache()

        def serve(replicas):
            engine = make_engine(replicas=replicas, plan_cache=cache,
                                 batch_window_us=1000.0)
            engine.submit_many(
                [bert_workload("mnli", 4, seed=s) for s in range(8)],
                interarrival_us=800.0,
            )
            return engine.run(policy="continuous")

        serve(1)
        misses_after_warmup = cache.misses
        report = serve(4)
        assert cache.misses == misses_after_warmup
        assert all(b.cache_misses == 0 for b in report.batches)


class TestContinuousVsDrain:
    def test_continuous_cuts_queueing_delay_under_light_load(self):
        cache = PlanCache()

        def serve(policy):
            engine = make_engine(plan_cache=cache, batch_window_us=1000.0)
            engine.submit_many(
                [bert_workload("mnli", 8, seed=s % 4) for s in range(16)],
                interarrival_us=5000.0,
            )
            return engine.run(policy=policy)

        serve("continuous")  # warm the plan cache
        drain = serve("drain")
        continuous = serve("continuous")
        assert continuous.p95_queue_us < drain.p95_queue_us
        assert continuous.mean_queue_us < drain.mean_queue_us

    def test_reports_carry_policy(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        assert engine.run(policy="continuous").policy == "continuous"
        engine.submit(bert_workload("mnli", 4, seed=0))
        assert engine.run().policy == "drain"

    def test_continuous_run_drains_queue(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        engine.run(policy="continuous")
        assert engine.pending() == 0

    def test_unknown_policy_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.run(policy="batch")


class TestAccounting:
    def test_every_request_reported_once_in_id_order(self):
        engine = make_engine(batch_window_us=500.0)
        handles = [
            engine.submit(bert_workload("mnli", 4, seed=s),
                          arrival_us=s * 700.0)
            for s in range(7)
        ]
        report = engine.run(policy="continuous")
        assert [r.request_id for r in report.requests] == [
            h.request_id for h in handles
        ]
        batched_ids = sorted(
            rid for b in report.batches for rid in b.request_ids
        )
        assert batched_ids == [h.request_id for h in handles]

    def test_queueing_delay_nonnegative_and_consistent(self):
        engine = make_engine(replicas=2, batch_window_us=1500.0)
        engine.submit_many(
            [bert_workload("mnli", 4, seed=s) for s in range(6)],
            interarrival_us=1000.0,
        )
        report = engine.run(policy="continuous")
        for r in report.requests:
            assert r.queue_us >= 0
            assert r.start_us >= r.arrival_us
            assert r.latency_us == pytest.approx(r.queue_us + r.exec_us)

    def test_incompatible_signatures_keep_separate_open_batches(self):
        engine = make_engine(batch_window_us=4000.0)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(longformer_workload(seq_len=2048, batch_size=1, seed=0),
                      arrival_us=100.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=200.0)
        report = engine.run(policy="continuous")
        sizes = sorted(b.size for b in report.batches)
        assert sizes == [1, 2]

    def test_makespan_spans_first_start_to_last_completion(self):
        engine = make_engine(replicas=2)
        engine.submit_many(
            [bert_workload("mnli", 4, seed=s) for s in range(5)],
            interarrival_us=2500.0,
        )
        report = engine.run(policy="continuous")
        first = min(b.start_us for b in report.batches)
        last = max(b.start_us + b.exec_us for b in report.batches)
        assert report.makespan_us == pytest.approx(last - first)


class TestSelectionOverlap:
    def _stream(self, engine):
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=500.0)
        engine.submit(bert_workload("cola", 4, seed=2), arrival_us=700.0)

    def test_cold_trace_saves_time(self):
        """A cold-heavy trace overlaps its Algorithm 1 searches with the
        open batching window / prior compute: the report must show a
        strictly positive saving, attributed to the replicas."""
        engine = make_engine(batch_window_us=1000.0)
        self._stream(engine)
        report = engine.run(policy="continuous")
        assert report.overlap_saved_us > 0
        assert sum(
            s.overlap_saved_us for s in report.replica_stats
        ) == pytest.approx(report.overlap_saved_us)
        assert sum(
            b.overlap_saved_us for b in report.batches
        ) == pytest.approx(report.overlap_saved_us)
        assert "overlap" in report.describe()

    def test_warm_trace_saves_exactly_zero(self):
        """When every signature hits the plan cache there is no search to
        hide — the saving must be exactly zero, not merely small."""
        cache = PlanCache()
        for _ in range(2):
            engine = make_engine(batch_window_us=1000.0, plan_cache=cache)
            self._stream(engine)
            report = engine.run(policy="continuous")
        assert all(b.cache_misses == 0 for b in report.batches)
        assert report.overlap_saved_us == 0.0

    def test_cold_batch_waits_for_its_search_tail(self):
        """Compute cannot start before the speculatively issued search
        finishes: ``start = max(close, issue + search)`` and the saving is
        ``min(window, search)`` — the search hid behind the open window."""
        engine = make_engine(batch_window_us=800.0)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        report = engine.run(policy="continuous")
        batch = report.batches[0]
        assert batch.start_us >= 800.0  # never before the batch closes
        if batch.start_us > 800.0:
            # The search outlived the window: the whole window was hidden.
            assert batch.overlap_saved_us == pytest.approx(800.0)
        else:
            # The search fit inside the window: all of it was hidden.
            assert 0.0 < batch.overlap_saved_us <= 800.0

    def test_overlap_disabled_restores_serial_accounting(self):
        engine = make_engine(batch_window_us=1000.0, overlap_selection=False)
        self._stream(engine)
        report = engine.run(policy="continuous")
        assert report.overlap_saved_us == 0.0
        # Serial accounting: the cold search is inside exec, and batches
        # start at their close time.
        cold = [b for b in report.batches if b.cache_misses > 0]
        assert cold and all(b.exec_us >= b.selection_us for b in cold)

    def test_speculation_counts_fold_into_batch_stats(self):
        """The open-time speculative lookups are attributed to the batch:
        a cold batch still reports cache_misses > 0 even though the merged
        workload resolved with hits at close time."""
        engine = make_engine(batch_window_us=500.0)
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        report = engine.run(policy="continuous")
        assert report.batches[0].cache_misses > 0

    def test_drain_policy_reports_zero_overlap(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        report = engine.run(policy="drain")
        assert report.overlap_saved_us == 0.0


class TestCostAwarePlacement:
    """Property tests for heterogeneous cost-aware placement."""

    @staticmethod
    def _stream(engine, n=10, gap_us=800.0):
        engine.submit_many(
            [bert_workload("mnli", 8, seed=s) for s in range(n)],
            interarrival_us=gap_us,
        )

    @staticmethod
    def _placement(report):
        """The deterministic placement record of a run."""
        return [
            (tuple(b.request_ids), b.replica_id, b.tokens, b.padded_tokens)
            for b in report.batches
        ]

    def test_identical_lineup_reproduces_least_loaded_exactly(self):
        """With all-identical replica specs the exec estimate is one
        constant per signature, so ordering by predicted finish collapses
        to the legacy (free_at, id) order: placement must match the
        least-loaded scheduler decision for decision."""
        def serve(placement):
            cache = PlanCache()
            engine = make_engine(
                replicas=3, placement=placement, plan_cache=cache,
                max_batch_size=2, batch_window_us=500.0,
                overlap_selection=False,
            )
            self._stream(engine)
            engine.run(policy="continuous")  # warm the plan cache
            self._stream(engine)
            return engine.run(policy="continuous")

        least_loaded = serve("least-loaded")
        cost_aware = serve("cost-aware")
        assert self._placement(cost_aware) == self._placement(least_loaded)
        assert [
            (s.replica_id, s.device, s.batches, s.tokens)
            for s in cost_aware.replica_stats
        ] == [
            (s.replica_id, s.device, s.batches, s.tokens)
            for s in least_loaded.replica_stats
        ]

    def test_faster_replica_never_receives_fewer_batches(self):
        """Under uniform traffic a strictly-faster device class must end up
        with at least as many batches as a strictly-slower one — the slow
        device is listed first so naive id-order ties would favour it."""
        from repro.hw import A100

        engine = make_engine(
            replica_specs=[V100, A100], max_batch_size=2,
            batch_window_us=500.0,
        )
        self._stream(engine, n=12, gap_us=600.0)
        report = engine.run(policy="continuous")
        by_id = {s.replica_id: s for s in report.replica_stats}
        assert by_id[0].device == V100.name
        assert by_id[1].device == A100.name
        assert by_id[1].batches >= by_id[0].batches

    def test_idle_fleet_prefers_the_faster_device(self):
        """A batch closing with every replica idle goes to the device that
        finishes it soonest, not to replica id 0."""
        from repro.hw import A100

        engine = make_engine(replica_specs=[V100, A100])
        engine.submit(bert_workload("mnli", 4, seed=0))
        report = engine.run(policy="continuous")
        assert [b.replica_id for b in report.batches] == [1]

    def test_replica_stats_device_survives_round_trip(self):
        import dataclasses

        from repro.hw import A100
        from repro.runtime import ReplicaStats

        engine = make_engine(replica_specs=[A100, V100])
        engine.submit(bert_workload("mnli", 4, seed=0))
        report = engine.run(policy="continuous")
        for stats in report.replica_stats:
            clone = ReplicaStats(**dataclasses.asdict(stats))
            assert clone == stats
        assert {s.device for s in report.replica_stats} == {
            A100.name, V100.name
        }

    def test_added_replicas_of_seen_classes_add_no_cold_searches(self):
        from repro.hw import A100

        cache = PlanCache()

        def serve(specs):
            # A same-instant backlog of identical singleton batches forces
            # every device class into service, so the warm-up run resolves
            # the traffic signature's plans for both classes (one seed:
            # the property under test is per (signature, class) coverage,
            # not per-seed signature drift).
            engine = make_engine(replica_specs=specs, plan_cache=cache,
                                 max_batch_size=1, batch_window_us=0.0)
            engine.submit_many(
                [bert_workload("mnli", 8, seed=0) for _ in range(8)],
                interarrival_us=0.0,
            )
            return engine.run(policy="continuous")

        warmup = serve([A100, V100])
        assert len({b.replica_id for b in warmup.batches}) == 2
        misses_after_warmup = cache.misses
        report = serve([A100, A100, V100, V100])
        assert cache.misses == misses_after_warmup
        assert all(b.cache_misses == 0 for b in report.batches)

    def test_describe_reports_device_classes(self):
        from repro.hw import A100

        engine = make_engine(replica_specs=[A100, V100])
        engine.submit(bert_workload("mnli", 4, seed=0))
        report = engine.run(policy="continuous")
        text = report.describe()
        assert "device classes:" in text
        assert A100.name in text and V100.name in text
        per_class = report.device_class_stats()
        assert set(per_class) == {A100.name, V100.name}
        assert sum(agg["batches"] for agg in per_class.values()) == len(
            report.batches
        )


class TestSchedulerValidation:
    def test_replica_count_validated(self):
        with pytest.raises(ValueError):
            make_engine(replicas=0)
        with pytest.raises(ValueError):
            ContinuousScheduler(make_engine(), replicas=0)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            make_engine(batch_window_us=-1.0)
        with pytest.raises(ValueError):
            ContinuousScheduler(make_engine(), batch_window_us=-5.0)

    def test_empty_queue_runs_clean(self):
        report = make_engine().run(policy="continuous")
        assert report.requests == []
        assert report.batches == []
        assert report.makespan_us == 0.0
