"""Tests for the unified training path (PR 10).

Training prices its weight-sparse matmuls through ``Planner.resolve`` —
the same spec/cache/persistence machinery the serving stack uses.  The
contract under test:

* the two new plan kinds (``weight-sparse``, ``nm-sparse``) validate,
  serialize, and key caches like the original four — spec -> json -> spec
  is an identity, cache keys are stable across interpreters and hash
  seeds, and nm-sparse plans (with their cached channel permutation)
  survive ``PlanCache.save``/``load`` and the cluster wire codec;
* the full-TileDB Algorithm 1 search strictly beats the old silent
  ``tiles()[:8]`` truncation on a known case (the regression that
  motivated the rewrite);
* warm-start works end to end: a shared cache across pruning steps pays
  each search once, drifting masks at equal sparsity replay plans through
  the quantized signature, and the report's hit/miss/search-us provenance
  reflects all of it.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.baselines.pit_backend import PITBackend
from repro.core import (
    PermutedChoice,
    PlanCache,
    Planner,
    PlanSpec,
    TileDB,
    kernel_selection,
    nm_kernel_selection,
    nm_permutation_candidates,
)
from repro.core.kernels import SparseMatmulKernel
from repro.core.plan import decode_value, encode_value
from repro.hw import V100
from repro.hw.costmodel import dense_matmul_time_us
from repro.runtime import sparse_training_run, sparse_training_step
from repro.runtime.cluster.codec import decode_wire, encode_wire
from repro.runtime.training import _family_masks
from repro.sparsity import MagnitudePruner, nm_prune_mask


@pytest.fixture(scope="module")
def tiledb():
    return TileDB.shared(V100, "float32")


def weight_masks(shape=(768, 768), block=(32, 1), sparsity=0.9, seed=7):
    rng = np.random.default_rng(seed)
    pruner = MagnitudePruner(block)
    return [pruner.mask(rng.standard_normal(shape), sparsity)]


# ----------------------------------------------------------------------
# PlanSpec validation for the new kinds
# ----------------------------------------------------------------------
class TestTrainingPlanSpecs:
    def test_weight_sparse_requires_operand_b(self, tiledb):
        with pytest.raises(ValueError, match="sparse_operand must be 'B'"):
            PlanSpec(kind="weight-sparse", m=128, k=64, n=64,
                     sparse_operand="A", tiledb_key=tiledb.cache_key)

    def test_nm_pattern_shape_and_alignment(self, tiledb):
        kwargs = dict(m=128, k=64, n=64, sparse_operand="B",
                      tiledb_key=tiledb.cache_key)
        with pytest.raises(ValueError, match=r"\(n, m\) pattern"):
            PlanSpec(kind="nm-sparse", pattern=(2,), **kwargs)
        with pytest.raises(ValueError, match="invalid N:M"):
            PlanSpec(kind="nm-sparse", pattern=(4, 2), **kwargs)
        with pytest.raises(ValueError, match="not divisible"):
            PlanSpec(kind="nm-sparse", pattern=(2, 7), **kwargs)

    def test_nm_permutation_policy_shape(self, tiledb):
        kwargs = dict(m=128, k=64, n=64, sparse_operand="B",
                      pattern=(2, 4), tiledb_key=tiledb.cache_key)
        with pytest.raises(ValueError, match="permutation policy"):
            PlanSpec(kind="nm-sparse", permutation=(1, 0), **kwargs)
        spec = PlanSpec(kind="nm-sparse",
                        permutation=("learned", 2, 0), **kwargs)
        assert spec.permutation == ("learned", 2, 0)

    def test_legacy_kinds_reject_nm_fields(self, tiledb):
        with pytest.raises(ValueError, match="nm-sparse-only"):
            PlanSpec(kind="proj", m=128, k=64, n=64, pattern=(2, 4),
                     tiledb_key=tiledb.cache_key)

    def test_legacy_cache_key_layout_unchanged(self, tiledb):
        """Kinds without pattern/permutation keep the 9-tuple key, so old
        dumps and the shard router keep working; nm-sparse grows to 11
        with the tiledb key still last."""
        legacy = PlanSpec(kind="proj", m=128, k=64, n=64,
                          signature=(7, 20, 20), tiledb_key=tiledb.cache_key)
        assert len(legacy.cache_key()) == 9
        nm = PlanSpec(kind="nm-sparse", m=128, k=64, n=64,
                      sparse_operand="B", pattern=(2, 4),
                      signature=(7, 20, 20), tiledb_key=tiledb.cache_key)
        key = nm.cache_key()
        assert len(key) == 11
        assert key[-1] == tiledb.cache_key
        assert key[8] == (2, 4)


# ----------------------------------------------------------------------
# Serialization: JSON codec, wire codec, persistence, hash-seed stability
# ----------------------------------------------------------------------
class TestTrainingSerialization:
    def nm_spec(self, tiledb):
        return PlanSpec(kind="nm-sparse", m=512, k=768, n=768,
                        sparse_operand="B", pattern=(2, 4),
                        permutation=("learned", 2, 11),
                        signature=(7, 18, 18), tiledb_key=tiledb.cache_key)

    def test_spec_json_round_trip_identity(self, tiledb):
        ws = PlanSpec(kind="weight-sparse", m=512, k=768, n=768,
                      sparse_operand="B", signature=(7, 18, 18),
                      tiledb_key=tiledb.cache_key)
        for spec in (ws, self.nm_spec(tiledb)):
            revived = PlanSpec.from_json(
                json.loads(json.dumps(spec.to_json()))
            )
            assert revived == spec
            assert revived.cache_key() == spec.cache_key()

    def test_permuted_choice_json_round_trip(self, tiledb):
        choice = nm_kernel_selection(
            weight_masks(), 512, 768, 768, tiledb, pattern=(2, 4)
        )
        assert isinstance(choice, PermutedChoice)
        revived = decode_value(json.loads(json.dumps(encode_value(choice))))
        assert revived == choice

    def test_permuted_choice_rides_the_wire_codec(self, tiledb):
        choice = nm_kernel_selection(
            weight_masks(), 512, 768, 768, tiledb, pattern=(2, 4)
        )
        assert decode_wire(json.loads(json.dumps(encode_wire(choice)))) == choice

    def test_nm_plan_survives_cache_save_load(self, tiledb, tmp_path):
        cache = PlanCache()
        planner = Planner(tiledb, cache)
        spec = planner.make_spec(
            "nm-sparse", weight_masks(), 512, 768, 768,
            sparse_operand="B", pattern=(2, 4),
        )
        cold = planner.resolve(spec, lambda: weight_masks())
        assert cold.cold
        path = tmp_path / "plans.json"
        cache.save(path, tiledb_key=tiledb.cache_key)

        revived = PlanCache.load(path, expected_tiledb_key=tiledb.cache_key)
        warm = Planner(tiledb, revived).resolve(spec)
        assert warm.cache_hit
        assert warm.choice == cold.choice
        assert warm.choice.pattern == (2, 4)

    def test_nm_cache_key_stable_across_hash_seeds(self, tiledb):
        """The persistence property under adversarial hashing: the same
        nm-sparse spec built in interpreters with different
        PYTHONHASHSEEDs encodes to the identical cache key."""
        src_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        code = (
            "import json\n"
            "from repro.core import PlanSpec, TileDB\n"
            "from repro.hw import V100\n"
            "from repro.core.plan import encode_value\n"
            "db = TileDB.shared(V100, 'float32')\n"
            "spec = PlanSpec(kind='nm-sparse', m=512, k=768, n=768,\n"
            "                sparse_operand='B', pattern=(2, 4),\n"
            "                permutation=('learned', 2, 11),\n"
            "                signature=(7, 18, 18), tiledb_key=db.cache_key)\n"
            "print(json.dumps(encode_value(spec.cache_key())))\n"
        )
        outs = []
        for hashseed in ("0", "42"):
            env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
            out = subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True,
                env=env, timeout=120,
            )
            assert out.returncode == 0, out.stderr
            outs.append(out.stdout.strip())
        mine = json.dumps(encode_value(self.nm_spec(tiledb).cache_key()))
        assert outs[0] == outs[1] == mine


# ----------------------------------------------------------------------
# The search itself
# ----------------------------------------------------------------------
class TestFullTileDBSearch:
    def test_truncated_search_was_worse(self, tiledb):
        """The regression the rewrite fixes: the old training path searched
        only ``tiledb.tiles()[:8]`` and could silently pick a worse tile.
        On this known case the full Algorithm 1 search is strictly
        cheaper than the truncated one."""
        mask = weight_masks(sparsity=0.98, seed=7)[0]
        m = 512

        truncated = float("inf")
        for entry in tiledb.tiles()[:8]:
            for axis in ("n", "k"):
                kern = SparseMatmulKernel(
                    entry.tile, axis, V100, "float32", sparse_operand="B"
                )
                truncated = min(truncated, kern.estimate_us(mask, m))
        truncated = min(
            truncated,
            dense_matmul_time_us(
                m, mask.shape[0], mask.shape[1],
                tiledb.best_dense_tile(m, *mask.shape).tile, "float32", V100,
            ),
        )

        full = kernel_selection(
            [mask], m, mask.shape[0], mask.shape[1], tiledb,
            sparse_operand="B",
        )
        assert full.est_cost_us < truncated

    def test_nm_projection_properties(self):
        rng = np.random.default_rng(3)
        scores = rng.standard_normal((64, 32))
        scores[5, :] = 0.0
        kept = nm_prune_mask(scores, 2, 4, axis=0)
        # Per aligned 4-group along axis 0: at most 2 survivors.
        groups = kept.reshape(16, 4, 32)
        assert int(groups.sum(axis=1).max()) <= 2
        # Exact zeros never survive, whatever their group looks like.
        assert not kept[5].any()

    def test_permutation_candidates(self):
        samples = weight_masks(shape=(64, 64), block=(1, 1), sparsity=0.5)
        cands = nm_permutation_candidates(samples, (), 64)
        assert cands[0] is None  # identity always competes
        assert len(cands) == 3
        assert all(sorted(c) == list(range(64)) for c in cands[1:])
        learned = nm_permutation_candidates(samples, ("learned", 2, 0), 64)
        assert len(learned) == 5
        with pytest.raises(ValueError):
            nm_permutation_candidates(samples, ("genetic", 1), 64)

    def test_nm_selection_caches_concrete_permutation(self, tiledb):
        choice = nm_kernel_selection(
            weight_masks(), 512, 768, 768, tiledb,
            pattern=(2, 4), permutation=("learned", 2, 11),
        )
        assert choice.pattern == (2, 4)
        # The winning order is concrete: identity or a full k-permutation,
        # never the search policy.
        assert choice.permutation == () or sorted(choice.permutation) == list(
            range(768)
        )


# ----------------------------------------------------------------------
# Warm-start through the training entry points
# ----------------------------------------------------------------------
class TestTrainingWarmStart:
    def test_no_direct_search_in_training_module(self):
        """The unification invariant: training owns no TileDB walk or
        kernel-search code — every resolution flows through the Planner."""
        import repro.runtime.training as training

        src = open(training.__file__).read()
        for needle in ("tiles()", "kernel_selection", "SparseMatmulKernel",
                       "shared_tiledb", "from ..core.tiledb",
                       "dense_matmul_time_us"):
            assert needle not in src, f"training.py still references {needle}"

    def test_shared_cache_pays_each_search_once(self):
        cache = PlanCache()
        first = sparse_training_step(
            "pit", V100, block=(32, 1), sparsity=0.9, plan_cache=cache
        )
        assert first.plan_misses == 3 and first.plan_hits == 0
        assert first.search_us > 0
        second = sparse_training_step(
            "pit", V100, block=(32, 1), sparsity=0.9, plan_cache=cache
        )
        assert second.plan_misses == 0 and second.plan_hits == 3
        assert second.latency_ms == first.latency_ms  # warm pricing identical

    def test_baselines_report_zero_plan_traffic(self):
        for backend in ("pytorch", "pytorch-s"):
            r = sparse_training_step(backend, V100, block=(32, 1), sparsity=0.9)
            assert r.plan_hits == 0 and r.plan_misses == 0
            assert r.search_us == 0.0

    def test_drifting_masks_share_plans(self):
        """seed_stride regenerates the weights each step; equal-sparsity
        steps still hit through the quantized signature."""
        reports = sparse_training_run(
            "pit", V100, sparsities=(0.9, 0.9, 0.9), block=(32, 1),
            seed=0, seed_stride=1,
        )
        assert reports[0].plan_misses == 3
        assert sum(r.plan_hits for r in reports[1:]) > 0

    def test_nm_step_resolves_through_same_cache(self):
        cache = PlanCache()
        cold = sparse_training_step(
            "pit", V100, block=(32, 1), sparsity=0.9, plan_cache=cache,
            pattern=(2, 4), permutation=("learned", 2, 11),
        )
        assert cold.plan_misses == 3
        warm = sparse_training_step(
            "pit", V100, block=(32, 1), sparsity=0.9, plan_cache=cache,
            pattern=(2, 4), permutation=("learned", 2, 11),
        )
        assert warm.plan_misses == 0 and warm.plan_hits == 3
        assert warm.latency_ms == cold.latency_ms

    def test_family_masks_memoized(self):
        from repro.models.config import bert_base

        a = _family_masks(bert_base(), (32, 1), 0.9, 0)
        b = _family_masks(bert_base(), (32, 1), 0.9, 0)
        assert a is b  # the cover pyramid is built once and reused

    def test_backend_exposes_planner_provenance(self):
        cache = PlanCache()
        pit = PITBackend(V100, "float32", plan_cache=cache)
        mask = weight_masks(sparsity=0.9)[0]
        resolved = pit.weight_sparse_plan([mask], 512, *mask.shape)
        assert resolved.spec.kind == "weight-sparse"
        assert resolved.spec.sparse_operand == "B"
        assert resolved.cold and resolved.search_us > 0
        again = pit.weight_sparse_plan([mask], 512, *mask.shape)
        assert again.cache_hit
        assert again.choice == resolved.choice
