"""Tests for repro.analysis — the pitlint static analyzer and its runtime
lock verifier.

Three layers:

* **fixture corpus** — every rule flags its known-bad twin at the exact
  lines marked ``# expect[rule-id]``, and reports nothing on the
  known-good twin;
* **live repo** — ``src`` analyzes clean (the CI gate), and the static
  lock-order graph is acyclic with the expected nodes;
* **static vs dynamic** — a threaded PlanCache/registry workload run
  under debug locks produces no acquisition-order edge the static graph
  does not predict.
"""

import json
import re
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import (
    analyze,
    analyze_paths,
    extract_suppressions,
    known_rule_ids,
    load_corpus,
    static_lock_order,
)
from repro.analysis.__main__ import main as cli_main
from repro.analysis.findings import Suppression
from repro.analysis.runtime_checks import (
    DebugLock,
    LockOrderError,
    debug_locks_installed,
    make_lock,
    observed_edges,
    reset_observed,
    verify_against_static,
)
from repro.core import PlanCache

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

EXPECTED_RULE_IDS = {
    "lock-discipline",
    "async-hygiene",
    "replay-determinism",
    "seeded-rng",
    "frozen-spec-purity",
    "bounded-retry",
    "transport-hygiene",
    "pragma-justification",
}

EXPECT_RE = re.compile(r"#\s*expect\[([a-z-]+)\]")


def expected_markers(path: Path):
    """``(rule, line)`` for every ``# expect[rule]`` marker in a fixture."""
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for match in EXPECT_RE.finditer(line):
            out.append((match.group(1), lineno))
    return sorted(out)


def analyze_fixture(name: str):
    corpus = load_corpus([str(FIXTURES / name)], root=str(REPO_ROOT))
    return analyze(corpus)


class TestRuleRegistry:
    def test_all_five_plus_pragma_rules_registered(self):
        # Registration happens on first analyze(); force it via the CLI
        # import path used everywhere else.
        analyze_fixture("good_seeded_rng.py")
        assert set(known_rule_ids()) == EXPECTED_RULE_IDS


class TestFixtureCorpus:
    BAD = [
        "bad_lock_discipline.py",
        "bad_async_hygiene.py",
        "bad_replay_determinism.py",
        "bad_seeded_rng.py",
        "bad_frozen_spec.py",
        "bad_nm_permutation.py",
        "bad_bounded_retry.py",
        "bad_transport_hygiene.py",
    ]
    GOOD = [
        "good_lock_discipline.py",
        "good_async_hygiene.py",
        "good_replay_determinism.py",
        "good_seeded_rng.py",
        "good_frozen_spec.py",
        "good_nm_permutation.py",
        "good_bounded_retry.py",
        "good_transport_hygiene.py",
        "good_pragma.py",
    ]

    @pytest.mark.parametrize("name", BAD)
    def test_bad_fixture_flagged_at_exact_lines(self, name):
        report = analyze_fixture(name)
        got = sorted((f.rule, f.line) for f in report.findings)
        assert got == expected_markers(FIXTURES / name)

    @pytest.mark.parametrize("name", GOOD)
    def test_good_fixture_is_clean(self, name):
        report = analyze_fixture(name)
        assert [f"{f.location()} {f.message}" for f in report.findings] == []

    def test_bad_pragma_fixture(self):
        """Unjustified, unknown-rule, and stale pragmas are each findings;
        the unjustified one still suppresses (the finding moves to the
        audit trail), so the only surviving rule is the pragma audit."""
        report = analyze_fixture("bad_pragma.py")
        got = sorted((f.rule, f.line) for f in report.findings)
        assert got == [
            ("pragma-justification", 9),   # no justification
            ("pragma-justification", 10),  # unknown rule id
            ("pragma-justification", 10),  # ...and therefore suppresses nothing
            ("pragma-justification", 11),  # stale: no finding on the line
        ]
        assert [(f.rule, f.line) for f in report.suppressed] == [
            ("seeded-rng", 9)
        ]


class TestSuppressions:
    def test_same_line_and_standalone_coverage(self):
        source = textwrap.dedent(
            """\
            x = 1  # pit: allow[seeded-rng] - same line
            # pit: allow[lock-discipline] - covers the statement below
            y = 2
            """
        )
        sup = extract_suppressions(source, "f.py")
        assert [(s.rule, s.line, s.covers, s.reason is not None) for s in sup] == [
            ("seeded-rng", 1, (1,), True),
            ("lock-discipline", 2, (2, 3), True),
        ]

    def test_wildcard_matches_any_rule(self):
        sup = Suppression(
            rule="*", path="f.py", line=3, covers=(3,), reason="why"
        )
        from repro.analysis import Finding

        assert sup.matches(
            Finding(rule="seeded-rng", path="f.py", line=3, message="m")
        )
        assert not sup.matches(
            Finding(rule="seeded-rng", path="f.py", line=4, message="m")
        )

    def test_pragma_inside_string_literal_is_ignored(self):
        source = 'text = "# pit: allow[seeded-rng] - not a comment"\n'
        assert extract_suppressions(source, "f.py") == []


class TestLiveRepo:
    def test_src_is_finding_free(self):
        """The CI gate: the shipped tree carries no violations and no
        unjustified or stale suppressions."""
        report = analyze_paths([str(SRC)], root=str(REPO_ROOT))
        assert [f"{f.location()} [{f.rule}] {f.message}" for f in report.findings] == []

    def test_static_lock_graph_shape(self):
        corpus = load_corpus([str(SRC)], root=str(REPO_ROOT))
        graph = static_lock_order(corpus)
        assert {"shard", "shared_plan_caches", "instance_cache"} <= set(
            graph["nodes"]
        )
        # The serving stack's strongest concurrency claim: no code path
        # holds one lock while taking another, so ordering deadlocks are
        # impossible by construction.
        assert graph["edges"] == []
        assert graph["cycles"] == []

    def test_syntax_error_becomes_a_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        report = analyze_paths([str(broken)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == ["syntax-error"]
        assert report.findings[0].line == 1


class TestDebugLock:
    def test_records_nested_edge(self):
        reset_observed()
        alpha, beta = DebugLock("alpha"), DebugLock("beta")
        with alpha:
            with beta:
                pass
        assert ("alpha", "beta") in observed_edges()

    def test_raises_on_order_reversal(self):
        reset_observed()
        alpha, beta = DebugLock("alpha"), DebugLock("beta")
        with alpha:
            with beta:
                pass
        with pytest.raises(LockOrderError, match="alpha"):
            with beta:
                with alpha:
                    pass

    def test_same_class_nesting_is_a_self_cycle(self):
        reset_observed()
        shard_a, shard_b = DebugLock("shard"), DebugLock("shard")
        with pytest.raises(LockOrderError, match="shard"):
            with shard_a:
                with shard_b:
                    pass

    def test_reentrant_reacquisition_records_nothing(self):
        reset_observed()
        lock = DebugLock("alpha")
        with lock:
            with lock:
                pass
        assert observed_edges() == set()

    def test_make_lock_is_env_gated(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG_LOCKS", raising=False)
        assert not isinstance(make_lock("shard"), DebugLock)
        monkeypatch.setenv("REPRO_DEBUG_LOCKS", "1")
        audited = make_lock("shard")
        assert isinstance(audited, DebugLock)
        assert audited.order_class == "shard"

    def test_verify_against_static_reports_extras(self):
        reset_observed()
        outer, inner = DebugLock("outer"), DebugLock("inner")
        with outer:
            with inner:
                pass
        assert verify_against_static([]) == [("outer", "inner")]
        assert verify_against_static([("outer", "inner")]) == []


class TestStaticDynamicAgreement:
    def test_threaded_workload_observes_no_unpredicted_edge(self):
        """Hammer the sharded cache and the shared registry under debug
        locks; every observed acquisition-order edge must be predicted by
        the static graph (which predicts none at all)."""
        corpus = load_corpus([str(SRC)], root=str(REPO_ROOT))
        static_edges = static_lock_order(corpus)["edges"]

        with debug_locks_installed():
            cache = PlanCache(capacity=8, shards=4)
            keys = [
                ("plan", "proj", 1, 1, 1, "A", (s,), True, "db")
                for s in range(16)
            ]
            barrier = threading.Barrier(6)

            def worker(offset):
                barrier.wait()
                for i in range(40):
                    key = keys[(i + offset) % len(keys)]
                    cache.get_or_compute(key, lambda: "v")
                    cache.put(key, "v2")
                    len(cache)
                    cache.stats()
                    PlanCache.shared("lock-order-audited")

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not any(t.is_alive() for t in threads)
            PlanCache.clear_shared()
            violations = verify_against_static(static_edges)
        assert violations == []


class TestCLI:
    def test_clean_run_exits_zero(self, capsys):
        assert cli_main([str(FIXTURES / "good_seeded_rng.py")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_and_json_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "findings.json"
        code = cli_main(
            [
                str(FIXTURES / "bad_seeded_rng.py"),
                "--format",
                "json",
                "--output",
                str(out_file),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert {f["rule"] for f in payload["findings"]} == {"seeded-rng"}
        assert json.loads(out_file.read_text()) == payload

    def test_text_format_still_writes_json_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "findings.json"
        cli_main(
            [str(FIXTURES / "bad_seeded_rng.py"), "--output", str(out_file)]
        )
        capsys.readouterr()
        assert json.loads(out_file.read_text())["findings"]

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULE_IDS:
            assert rule_id in out

    def test_rule_selection(self, capsys):
        code = cli_main(
            [str(FIXTURES / "bad_seeded_rng.py"), "--rules", "async-hygiene"]
        )
        capsys.readouterr()
        assert code == 0  # the seeded-rng findings are out of scope

    def test_unknown_rule_is_usage_error(self, capsys):
        code = cli_main(
            [str(FIXTURES / "good_seeded_rng.py"), "--rules", "bogus"]
        )
        capsys.readouterr()
        assert code == 2

    def test_lock_graph_mode(self, capsys):
        assert cli_main([str(SRC), "--lock-graph"]) == 0
        graph = json.loads(capsys.readouterr().out)
        assert graph["cycles"] == []
