"""Integration tests: the full pipeline, end to end, plus cross-layer
invariants the unit tests cannot see.

These exercise compile -> detect -> execute -> verify for each dynamic
sparsity family, multi-device runs, and hypothesis properties of the
selection/cover machinery.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PITBackend, PyTorchBackend
from repro.core import (
    CoverCache,
    PITCompiler,
    TileDB,
    dense_matmul_workload,
    kernel_selection,
    matmul_workload,
)
from repro.hw import A100, V100, TileConfig
from repro.models import (
    bert_workload,
    opt_inference_workload,
    switch_workload,
)
from repro.runtime import run_transformer
from repro.sparsity import granular_mask


@pytest.fixture(scope="module")
def tiledb():
    return TileDB(V100, "float32")


class TestFullPipeline:
    """Compile -> online detect -> SRead/SWrite execute -> verify."""

    def test_activation_sparsity_pipeline(self):
        """OPT-style ReLU activations through the whole compiler."""
        rng = np.random.default_rng(0)
        from repro.sparsity import relu_activation_mask

        tokens, d_ff, d_model = 512, 1024, 256
        act_mask = relu_activation_mask(tokens, d_ff, 0.97, seed=1)
        act = np.abs(rng.standard_normal((tokens, d_ff))) * act_mask
        w2 = rng.standard_normal((d_ff, d_model))

        compiler = PITCompiler(V100)
        spec = compiler.plan_spec([act_mask], tokens, d_ff, d_model)
        compiled = compiler.compile(spec, [act_mask])
        result = compiled.run(act, w2, mask=act_mask)
        np.testing.assert_allclose(result.output, act @ w2, atol=1e-8)
        assert not compiled.choice.is_dense_fallback

    def test_padding_sparsity_pipeline(self):
        """Sequence padding: zero rows vanish from the computation."""
        rng = np.random.default_rng(1)
        lengths = [50, 120, 8, 77]
        max_len, d = 128, 64
        from repro.core import SeqLenPolicy

        token_mask = SeqLenPolicy.token_mask(lengths, max_len)
        x = rng.standard_normal((len(lengths) * max_len, d)) * token_mask[:, None]
        w = rng.standard_normal((d, d))
        mask2d = np.repeat(token_mask[:, None], d, axis=1)

        compiler = PITCompiler(V100)
        spec = compiler.plan_spec([mask2d], len(lengths) * max_len, d, d)
        compiled = compiler.compile(spec, [mask2d])
        result = compiled.run(x, w, mask=mask2d)
        np.testing.assert_allclose(result.output, x @ w, atol=1e-8)

    def test_repeated_batches_recompile_free(self):
        """The kernel is reused across batches with fresh patterns; only
        the online index changes (Figure 20's lesson applied)."""
        compiler = PITCompiler(V100)
        shape = (512, 512)
        first = granular_mask(shape, (8, 1), 0.97, seed=0)
        spec = compiler.plan_spec([first], 512, 512, 512)
        compiled = compiler.compile(spec, [first])
        rng = np.random.default_rng(2)
        for seed in range(3):
            mask = granular_mask(shape, (8, 1), 0.97, seed=seed + 10)
            a = rng.standard_normal(shape) * mask
            b = rng.standard_normal((512, 256))
            out = compiled.run(a, b[:, :512] if False else b, mask=mask)
            np.testing.assert_allclose(out.output, a @ b, atol=1e-8)
        assert compiler.cache_size() == 1  # one compiled kernel served all


class TestMultiDevice:
    def test_tensor_parallel_shards_weights(self):
        wl = opt_inference_workload("1.3b", 8, seed=0)
        single = run_transformer(wl, PITBackend(A100), devices=1)
        sharded = run_transformer(wl, PITBackend(A100), devices=8)
        assert sharded.peak_mem_gib < single.peak_mem_gib
        assert sharded.latency_ms < single.latency_ms

    def test_allreduce_cost_present(self):
        wl = bert_workload("mnli", 8, seed=0)
        rep = run_transformer(wl, PyTorchBackend(V100), devices=4)
        assert rep.timeline.by_op().get("tp.allreduce", 0) > 0

    def test_devices_validated(self):
        wl = bert_workload("mnli", 8, seed=0)
        with pytest.raises(ValueError):
            run_transformer(wl, PyTorchBackend(V100), devices=0)


class TestEngineDeterminism:
    def test_same_seed_same_report(self):
        a = run_transformer(switch_workload(64, 8, seed=3), PITBackend(A100))
        b = run_transformer(switch_workload(64, 8, seed=3), PITBackend(A100))
        assert a.latency_ms == pytest.approx(b.latency_ms)
        assert a.peak_mem_gib == pytest.approx(b.peak_mem_gib)

    def test_different_seed_different_lengths(self):
        a = run_transformer(bert_workload("mnli", 8, seed=1), PITBackend(V100))
        b = run_transformer(bert_workload("mnli", 8, seed=2), PITBackend(V100))
        assert a.latency_ms != pytest.approx(b.latency_ms)


class TestCoverProperties:
    """Hypothesis invariants of the cover/selection machinery."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        density=st.floats(0.01, 0.9),
        tm=st.sampled_from([8, 16, 32]),
        tk=st.sampled_from([8, 16, 32]),
    )
    def test_sparse_workload_never_exceeds_dense(self, seed, density, tm, tk):
        """CoverAlgo can only remove work, never add it."""
        rng = np.random.default_rng(seed)
        mask = rng.random((128, 128)) < density
        tile = TileConfig(tm, tk, 32)
        dense = dense_matmul_workload(128, 128, 64, tile)
        for axis in ("m", "k"):
            wl = matmul_workload(mask, tile, axis, 64)
            assert wl.total_k_steps <= dense.total_k_steps
            assert wl.num_output_tiles <= dense.num_output_tiles

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), density=st.floats(0.005, 0.3))
    def test_selection_estimate_bounded_by_dense(self, seed, density, tiledb):
        """Algorithm 1 (with fallback) never chooses worse than dense."""
        rng = np.random.default_rng(seed)
        mask = rng.random((256, 256)) < density
        choice = kernel_selection([mask], 256, 256, 256, tiledb)
        from repro.core import dense_matmul_workload as dmw
        from repro.hw import sparse_matmul_time_us

        entry = tiledb.best_dense_tile(256, 256, 256)
        dwl = dmw(256, 256, 256, entry.tile)
        dense_cost = sparse_matmul_time_us(
            dwl.total_k_steps, dwl.num_output_tiles, entry.tile,
            "float32", V100,
        )
        assert choice.est_cost_us <= dense_cost * 1.0001

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_cover_cache_matches_direct(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((96, 96)) < 0.2
        tile = TileConfig(16, 16, 16)
        cache = CoverCache(mask)
        for axis in ("m", "k"):
            assert matmul_workload(cache, tile, axis, 64) == matmul_workload(
                mask, tile, axis, 64
            )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sparsity=st.floats(0.5, 0.99),
    )
    def test_covered_sparsity_decreases_with_microtile_size(self, seed, sparsity):
        """Bigger covers can only look denser (fewer all-zero cells)."""
        from repro.core import covered_sparsity

        mask = granular_mask((256, 256), (2, 1), sparsity, seed=seed)
        small = covered_sparsity(mask, (4, 1))
        large = covered_sparsity(mask, (32, 1))
        assert large <= small + 1e-12
