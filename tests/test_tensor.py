"""Tests for the mini tensor framework: SimTensor, layouts, sparse formats."""

import numpy as np
import pytest

from repro.hw import V100
from repro.tensor import (
    Layout,
    SimTensor,
    bcsr_spmm,
    csr_spmm,
    dense_to_bcsr,
    dense_to_coo,
    dense_to_csr,
    from_mask,
    needs_transpose,
    randn,
)


class TestLayout:
    def test_contiguous_axis(self):
        assert Layout.ROW_MAJOR.contiguous_axis == 1
        assert Layout.COL_MAJOR.contiguous_axis == 0

    def test_transposed(self):
        assert Layout.ROW_MAJOR.transposed() is Layout.COL_MAJOR

    def test_needs_transpose(self):
        # Row-major + PIT-axis 0 (rows): micro-tiles are row slices, already
        # contiguous runs -> no flip.  PIT-axis 1 needs the flip.
        assert not needs_transpose(Layout.ROW_MAJOR, 0)
        assert needs_transpose(Layout.ROW_MAJOR, 1)
        assert needs_transpose(Layout.COL_MAJOR, 0)

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            needs_transpose(Layout.ROW_MAJOR, 2)


class TestSimTensor:
    def test_logical_dtype_bytes(self):
        t = SimTensor(np.zeros((4, 4)), dtype="float16")
        assert t.nbytes == 4 * 4 * 2  # logical fp16, despite fp32 storage

    def test_sparsity_ratio_from_values(self):
        data = np.zeros((10, 10))
        data[0, 0] = 1.0
        assert SimTensor(data).sparsity_ratio() == pytest.approx(0.99)

    def test_explicit_mask_wins(self):
        data = np.ones((4, 4))
        mask = np.zeros((4, 4), dtype=bool)
        mask[0] = True
        t = SimTensor(data, mask=mask)
        assert t.sparsity_ratio() == pytest.approx(0.75)
        assert t.masked_data().sum() == pytest.approx(4.0)

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            SimTensor(np.ones((4, 4)), mask=np.ones((2, 2), dtype=bool))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError):
            SimTensor(np.ones(3), dtype="complex128")

    def test_randn_seeded(self):
        assert np.array_equal(randn((3, 3), seed=7).data, randn((3, 3), seed=7).data)

    def test_from_mask(self):
        mask = np.eye(8, dtype=bool)
        t = from_mask(mask, seed=1)
        assert np.array_equal(t.nonzero_mask(), mask) or (
            (t.data[~mask] == 0).all()
        )


class TestCSR:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((64, 48)) * (rng.random((64, 48)) < 0.1)
        csr = dense_to_csr(dense, "float32", V100)
        assert np.array_equal(csr.to_dense(), dense)
        assert csr.nnz == np.count_nonzero(dense)

    def test_spmm_matches_dense(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((32, 40)) * (rng.random((32, 40)) < 0.2)
        rhs = rng.standard_normal((40, 24))
        csr = dense_to_csr(dense, "float32", V100)
        np.testing.assert_allclose(csr_spmm(csr, rhs), dense @ rhs, atol=1e-10)

    def test_spmm_shape_check(self):
        csr = dense_to_csr(np.eye(4), "float32", V100)
        with pytest.raises(ValueError):
            csr_spmm(csr, np.ones((5, 3)))

    def test_conversion_cost_scales_with_size(self):
        small = dense_to_csr(np.eye(256), "float32", V100).convert_us
        large = dense_to_csr(np.eye(1024), "float32", V100).convert_us
        assert large > small

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            dense_to_csr(np.zeros((2, 2, 2)), "float32", V100)


class TestBCSR:
    def test_roundtrip_exact_blocks(self):
        rng = np.random.default_rng(2)
        dense = np.zeros((64, 64))
        dense[0:32, 32:64] = rng.standard_normal((32, 32))
        bcsr = dense_to_bcsr(dense, (32, 32), "float32", V100)
        assert bcsr.num_blocks == 1
        assert np.array_equal(bcsr.to_dense(), dense)

    def test_partial_blocks_padded(self):
        dense = np.zeros((48, 48))
        dense[47, 47] = 5.0
        bcsr = dense_to_bcsr(dense, (32, 32), "float32", V100)
        assert np.array_equal(bcsr.to_dense(), dense)

    def test_coverage_waste_of_fine_sparsity(self):
        """One non-zero strip of 1x32 forces a whole 32x32 block: 96.9% waste."""
        dense = np.zeros((64, 64))
        dense[0, 0:32] = 1.0
        bcsr = dense_to_bcsr(dense, (32, 32), "float32", V100)
        assert bcsr.coverage_waste(nnz=32) == pytest.approx(1 - 32 / 1024)

    def test_spmm_matches_dense(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((64, 96)) * (rng.random((64, 96)) < 0.15)
        rhs = rng.standard_normal((96, 33))
        bcsr = dense_to_bcsr(dense, (32, 32), "float32", V100)
        np.testing.assert_allclose(bcsr_spmm(bcsr, rhs), dense @ rhs, atol=1e-10)

    def test_triton_conversion_slower_than_cusparse(self):
        """Figure 18's premise: block-layout builds cost more than CSR."""
        rng = np.random.default_rng(4)
        dense = rng.standard_normal((1024, 1024)) * (rng.random((1024, 1024)) < 0.05)
        csr = dense_to_csr(dense, "float32", V100)
        bcsr = dense_to_bcsr(dense, (32, 32), "float32", V100)
        assert bcsr.convert_us > csr.convert_us


class TestCOO:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((16, 16)) * (rng.random((16, 16)) < 0.3)
        coo = dense_to_coo(dense, "float32", V100)
        assert np.array_equal(coo.to_dense(), dense)
