"""Tests for the TileDB, Algorithm 1 selection, rules, compiler and policies."""

import numpy as np
import pytest

from repro.core import (
    DenseMatmulKernel,
    PagedAttentionPolicy,
    PITCompiler,
    PlanCache,
    SeqLenPolicy,
    SparseMatmulKernel,
    TileDB,
    batch_matmul_multi_axis_rules,
    cached_kernel_selection,
    kernel_from_choice,
    kernel_selection,
    matmul_axes_for_operand,
    matmul_rules,
    sparsity_signature,
)
from repro.hw import V100, TileConfig


def granular_mask(shape, granularity, sparsity, seed=0):
    gh, gw = granularity
    rng = np.random.default_rng(seed)
    grid = rng.random((shape[0] // gh, shape[1] // gw)) >= sparsity
    return np.kron(grid, np.ones(granularity, dtype=bool))


@pytest.fixture(scope="module")
def tiledb():
    return TileDB(V100, "float32")


class TestTileDB:
    def test_nonempty(self, tiledb):
        assert len(tiledb) >= 10

    def test_tile_cost_affine(self, tiledb):
        entry = tiledb.tiles()[0]
        c1 = entry.tile_cost_us(entry.tile.tk)
        c2 = entry.tile_cost_us(2 * entry.tile.tk)
        c3 = entry.tile_cost_us(3 * entry.tile.tk)
        assert c2 - c1 == pytest.approx(c3 - c2, rel=1e-6)

    def test_best_dense_tile_prefers_large(self, tiledb):
        best = tiledb.best_dense_tile(4096, 4096, 4096)
        assert best.tile.output_elems >= 32 * 32

    def test_entry_lookup(self, tiledb):
        tile = tiledb.tiles()[0].tile
        assert tiledb.entry_for(tile).tile == tile
        with pytest.raises(KeyError):
            tiledb.entry_for(TileConfig(3, 3, 3))


class TestRules:
    def test_axes_for_operand(self):
        assert set(matmul_axes_for_operand("A")) == {"m", "k"}
        assert set(matmul_axes_for_operand("B")) == {"n", "k"}
        with pytest.raises(ValueError):
            matmul_axes_for_operand("C")

    def test_rules_cover_tiles_times_axes(self, tiledb):
        rules = matmul_rules(tiledb.tiles(), sparse_operand="A")
        assert len(rules) == 2 * len(tiledb)

    def test_rule_microtile_matches_axis(self, tiledb):
        for rule in matmul_rules(tiledb.tiles()[:4]):
            if rule.pit_axis == "m":
                assert rule.microtile.shape == (1, rule.tile.tk)
            else:
                assert rule.microtile.shape == (rule.tile.tm, 1)

    def test_multi_axis_rules(self, tiledb):
        rules = batch_matmul_multi_axis_rules(tiledb.tiles()[:3])
        axes = {r.axes for r in rules}
        assert axes == {("b", "m"), ("b", "n")}
        extents = {"b": 8, "m": 128, "n": 64}
        assert rules[0].flattened_extent(extents) == 8 * 128


class TestKernelSelection:
    def test_high_sparsity_picks_sparse(self, tiledb):
        mask = granular_mask((1024, 1024), (8, 1), 0.99, seed=0)
        choice = kernel_selection([mask], 1024, 1024, 1024, tiledb)
        assert not choice.is_dense_fallback
        assert choice.est_cost_us > 0
        assert choice.covered_sparsity > 0.5

    def test_dense_input_falls_back(self, tiledb):
        """Algorithm 1: at low sparsity PIT 'seamlessly falls back to the
        dense computation'."""
        mask = np.ones((512, 512), dtype=bool)
        choice = kernel_selection([mask], 512, 512, 512, tiledb)
        assert choice.is_dense_fallback

    def test_row_granular_prefers_m_axis(self, tiledb):
        """Whole zero rows (padding tokens) are best removed on the m-axis."""
        mask = np.zeros((1024, 1024), dtype=bool)
        rng = np.random.default_rng(1)
        rows = rng.choice(1024, size=100, replace=False)
        mask[rows] = True
        choice = kernel_selection([mask], 1024, 1024, 1024, tiledb)
        assert choice.pit_axis == "m"

    def test_column_granular_prefers_k_axis(self, tiledb):
        mask = np.zeros((1024, 1024), dtype=bool)
        rng = np.random.default_rng(2)
        cols = rng.choice(1024, size=100, replace=False)
        mask[:, cols] = True
        choice = kernel_selection([mask], 1024, 1024, 1024, tiledb)
        assert choice.pit_axis == "k"

    def test_multiple_samples_averaged(self, tiledb):
        masks = [granular_mask((512, 512), (8, 1), 0.95, seed=s) for s in range(3)]
        choice = kernel_selection(masks, 512, 512, 512, tiledb)
        assert choice.est_cost_us > 0

    def test_sample_shape_validated(self, tiledb):
        with pytest.raises(ValueError):
            kernel_selection([np.ones((4, 4), dtype=bool)], 512, 512, 512, tiledb)

    def test_needs_samples(self, tiledb):
        with pytest.raises(ValueError):
            kernel_selection([], 512, 512, 512, tiledb)

    def test_search_time_recorded(self, tiledb):
        mask = granular_mask((256, 256), (2, 1), 0.9, seed=3)
        choice = kernel_selection([mask], 256, 256, 256, tiledb)
        assert choice.search_time_us > 0


class TestFastpathEquivalence:
    """The pyramid/batched fast path must agree with the legacy per-sample
    loop: same winning rule, cost and covered sparsity equal to float
    tolerance — only the search time may differ."""

    def _assert_equivalent(self, fast, slow):
        assert fast.tile == slow.tile
        assert fast.pit_axis == slow.pit_axis
        assert fast.microtile == slow.microtile
        assert fast.est_cost_us == pytest.approx(slow.est_cost_us, rel=1e-9)
        assert fast.covered_sparsity == pytest.approx(
            slow.covered_sparsity, rel=1e-9, abs=1e-12
        )

    @pytest.mark.parametrize(
        "granularity,sparsity",
        [((1, 1), 0.99), ((8, 1), 0.95), ((1, 8), 0.9), ((4, 4), 0.8)],
    )
    def test_sparse_a(self, tiledb, granularity, sparsity):
        masks = [
            granular_mask((256, 512), granularity, sparsity, seed=s)
            for s in range(3)
        ]
        fast = kernel_selection(masks, 256, 512, 384, tiledb)
        slow = kernel_selection(masks, 256, 512, 384, tiledb, fastpath=False)
        self._assert_equivalent(fast, slow)

    def test_sparse_b(self, tiledb):
        masks = [granular_mask((512, 256), (1, 4), 0.95, seed=s)
                 for s in range(2)]
        fast = kernel_selection(
            masks, 128, 512, 256, tiledb, sparse_operand="B"
        )
        slow = kernel_selection(
            masks, 128, 512, 256, tiledb, sparse_operand="B", fastpath=False
        )
        self._assert_equivalent(fast, slow)

    def test_dense_fallback_agrees(self, tiledb):
        mask = np.ones((256, 256), dtype=bool)
        fast = kernel_selection([mask], 256, 256, 256, tiledb)
        slow = kernel_selection([mask], 256, 256, 256, tiledb, fastpath=False)
        assert fast.is_dense_fallback and slow.is_dense_fallback
        assert fast.tile == slow.tile

    def test_profile_hook_reports_per_rule_timing(self, tiledb):
        mask = granular_mask((256, 256), (8, 1), 0.95)
        profile = {}
        kernel_selection([mask], 256, 256, 256, tiledb, profile=profile)
        assert profile["fastpath"] is True
        assert profile["num_samples"] == 1
        assert profile["num_rules"] == len(profile["rules"]) == 2 * len(tiledb)
        assert all(r["eval_us"] >= 0 for r in profile["rules"])
        assert profile["total_us"] >= sum(r["eval_us"] for r in profile["rules"]) * 0.5
        # The winning candidate's mean cost is the reported est_cost unless
        # the dense fallback won.
        assert min(r["mean_cost_us"] for r in profile["rules"]) > 0


class TestSignatureSinglePass:
    def test_matches_three_pass_reference(self):
        """The fused per-sample reduction must reproduce the original
        three-scan statistics exactly — signatures key the PlanCache, so a
        drifting value would silently split cached plans."""
        rng = np.random.default_rng(17)
        for _ in range(10):
            s = rng.random((63, 41)) < rng.uniform(0.0, 0.5)
            q = 0.05
            qinv = 1.0 / q
            ref = (
                int(round(float(np.mean([s.mean()])) * qinv)),
                int(round(float(np.mean([s.any(axis=1).mean()])) * qinv)),
                int(round(float(np.mean([s.any(axis=0).mean()])) * qinv)),
            )
            assert sparsity_signature([s], quantum=q) == ref


class _NoRulesTileDB:
    """A tile database whose rule enumeration comes up empty — the shape of
    the regression: ``best`` stayed None and ``best.pit_axis`` crashed."""

    def __init__(self, real):
        self._real = real
        self.spec = real.spec
        self.dtype = real.dtype
        self.tensor_core = real.tensor_core
        self.cache_key = ("no-rules",) + real.cache_key

    def tiles(self):
        return []

    def best_dense_tile(self, m, k, n):
        return self._real.best_dense_tile(m, k, n)


class TestSelectionNoCandidates:
    def test_no_candidates_without_fallback_raises(self, tiledb):
        mask = granular_mask((128, 128), (8, 1), 0.9)
        with pytest.raises(ValueError, match="no feasible PIT rule"):
            kernel_selection(
                [mask], 128, 128, 128, _NoRulesTileDB(tiledb),
                include_dense_fallback=False,
            )

    def test_no_candidates_forces_dense_fallback(self, tiledb):
        mask = granular_mask((128, 128), (8, 1), 0.9)
        choice = kernel_selection([mask], 128, 128, 128, _NoRulesTileDB(tiledb))
        assert choice.is_dense_fallback
        assert choice.tile is not None
        assert choice.est_cost_us < float("inf")


class TestPlanCache:
    def test_hit_on_statistically_alike_masks(self, tiledb):
        """Two different masks with the same quantized signature share a
        plan: the second lookup must not re-run Algorithm 1."""
        cache = PlanCache()
        m1 = granular_mask((512, 512), (8, 1), 0.95, seed=0)
        m2 = granular_mask((512, 512), (8, 1), 0.95, seed=7)
        assert not np.array_equal(m1, m2)
        assert sparsity_signature([m1]) == sparsity_signature([m2])
        c1 = cached_kernel_selection([m1], 512, 512, 512, tiledb, cache=cache)
        c2 = cached_kernel_selection([m2], 512, 512, 512, tiledb, cache=cache)
        assert c1 is c2
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_sparsity_drift(self, tiledb):
        """Density drifting past the quantization threshold is a new plan."""
        cache = PlanCache()
        sparse = granular_mask((512, 512), (8, 1), 0.95, seed=0)
        denser = granular_mask((512, 512), (8, 1), 0.60, seed=0)
        assert sparsity_signature([sparse]) != sparsity_signature([denser])
        cached_kernel_selection([sparse], 512, 512, 512, tiledb, cache=cache)
        cached_kernel_selection([denser], 512, 512, 512, tiledb, cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_fallback_flag_is_part_of_plan_identity(self, tiledb):
        """A plan cached with the dense fallback enabled must not be served
        to a caller that disabled it (and vice versa)."""
        cache = PlanCache()
        mask = granular_mask((256, 256), (8, 1), 0.9)
        with_fallback = cached_kernel_selection(
            [mask], 256, 256, 256, tiledb, cache=cache
        )
        without = cached_kernel_selection(
            [mask], 256, 256, 256, tiledb, cache=cache,
            include_dense_fallback=False,
        )
        assert cache.misses == 2
        assert not without.is_dense_fallback
        assert with_fallback is not without

    def test_miss_on_shape_or_operand_change(self, tiledb):
        cache = PlanCache()
        mask = granular_mask((256, 256), (8, 1), 0.95)
        cached_kernel_selection([mask], 256, 256, 256, tiledb, cache=cache)
        cached_kernel_selection([mask], 256, 256, 512, tiledb, cache=cache)
        assert cache.misses == 2

    def test_lru_eviction_bound(self, tiledb):
        cache = PlanCache(capacity=2)
        masks = {
            n: granular_mask((256, 256), (8, 1), 0.95)
            for n in (128, 256, 512)
        }
        for n in (128, 256, 512):
            cached_kernel_selection([masks[n]], 256, 256, n, tiledb, cache=cache)
        assert len(cache) == 2
        assert cache.evictions == 1
        # The oldest entry (n=128) was evicted: looking it up misses again.
        misses = cache.misses
        cached_kernel_selection([masks[128]], 256, 256, 128, tiledb, cache=cache)
        assert cache.misses == misses + 1

    def test_lru_refresh_on_hit(self, tiledb):
        cache = PlanCache(capacity=2)
        mask = granular_mask((256, 256), (8, 1), 0.95)
        cached_kernel_selection([mask], 256, 256, 128, tiledb, cache=cache)
        cached_kernel_selection([mask], 256, 256, 256, tiledb, cache=cache)
        cached_kernel_selection([mask], 256, 256, 128, tiledb, cache=cache)  # hit
        cached_kernel_selection([mask], 256, 256, 512, tiledb, cache=cache)
        # n=256 was least recently used, so n=128 must still be cached.
        hits = cache.hits
        cached_kernel_selection([mask], 256, 256, 128, tiledb, cache=cache)
        assert cache.hits == hits + 1

    def test_stats_and_hit_rate(self, tiledb):
        cache = PlanCache()
        mask = granular_mask((256, 256), (8, 1), 0.95)
        cached_kernel_selection([mask], 256, 256, 256, tiledb, cache=cache)
        cached_kernel_selection([mask], 256, 256, 256, tiledb, cache=cache)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_kernel_from_choice_matches_selection(self, tiledb):
        mask = granular_mask((512, 512), (8, 1), 0.99)
        choice = kernel_selection([mask], 512, 512, 512, tiledb)
        kernel = kernel_from_choice(choice, tiledb.spec, tiledb.dtype)
        if choice.is_dense_fallback:
            assert isinstance(kernel, DenseMatmulKernel)
        else:
            assert isinstance(kernel, SparseMatmulKernel)
            assert kernel.pit_axis == choice.pit_axis

    def test_compiler_uses_plan_cache(self):
        cache = PlanCache()
        compiler = PITCompiler(V100, plan_cache=cache)
        mask = granular_mask((256, 256), (8, 1), 0.99)
        spec = compiler.plan_spec([mask], 256, 256, 256)
        compiler.compile(spec, [mask], use_cache=False)
        compiler.compile(spec, [mask], use_cache=False)
        assert cache.hits == 1 and cache.misses == 1


class TestSharedPlanCache:
    def teardown_method(self):
        PlanCache.clear_shared()

    def test_same_name_returns_same_instance(self):
        a = PlanCache.shared("serving")
        b = PlanCache.shared("serving")
        assert a is b
        assert PlanCache.shared("other") is not a

    def test_parameter_mismatch_raises(self):
        PlanCache.shared("serving", capacity=64)
        with pytest.raises(ValueError):
            PlanCache.shared("serving", capacity=128)

    def test_clear_shared_drops_instances(self):
        a = PlanCache.shared("serving")
        PlanCache.clear_shared()
        assert PlanCache.shared("serving") is not a

    def test_shared_cache_warms_across_engines(self, tiledb):
        """Two callers naming the same shared cache reuse each other's
        Algorithm 1 outcomes — the cross-engine analogue of the scheduler's
        cross-replica warming."""
        mask = granular_mask((512, 512), (8, 1), 0.95, seed=0)
        cached_kernel_selection(
            [mask], 512, 512, 512, tiledb, cache=PlanCache.shared("warm")
        )
        cache = PlanCache.shared("warm")
        assert cache.misses == 1
        cached_kernel_selection([mask], 512, 512, 512, tiledb, cache=cache)
        assert cache.hits == 1 and cache.misses == 1


class TestCompiler:
    @staticmethod
    def _compile(compiler, samples, m, k, n, **kwargs):
        spec = compiler.plan_spec(samples, m, k, n)
        return compiler.compile(spec, samples, **kwargs)

    def test_compile_and_run_sparse(self):
        compiler = PITCompiler(V100)
        rng = np.random.default_rng(0)
        mask = np.zeros((1024, 1024), dtype=bool)
        mask[rng.choice(1024, size=16, replace=False)] = True  # 16 live rows
        a = rng.standard_normal((1024, 1024)) * mask
        b = rng.standard_normal((1024, 512))
        compiled = self._compile(compiler, [mask], 1024, 1024, 512)
        res = compiled.run(a, b, mask=mask)
        np.testing.assert_allclose(res.output, a @ b, atol=1e-10)
        assert isinstance(compiled.kernel, SparseMatmulKernel)

    def test_dense_fallback_runs(self):
        compiler = PITCompiler(V100)
        mask = np.ones((128, 128), dtype=bool)
        compiled = self._compile(compiler, [mask], 128, 128, 128)
        assert isinstance(compiled.kernel, DenseMatmulKernel)
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((128, 128)), rng.standard_normal((128, 128))
        np.testing.assert_allclose(compiled.run(a, b).output, a @ b, atol=1e-10)

    def test_cache_hits(self):
        compiler = PITCompiler(V100)
        mask = granular_mask((256, 256), (8, 1), 0.99)
        c1 = self._compile(compiler, [mask], 256, 256, 256)
        c2 = self._compile(compiler, [mask], 256, 256, 256)
        assert c1 is c2
        assert compiler.cache_size() == 1

    def test_compile_cache_is_sparsity_aware(self):
        """Two sparsity regimes of one shape keep separate kernels — the
        old shape-only cache silently served whichever compiled first."""
        compiler = PITCompiler(V100)
        sparse = granular_mask((1024, 1024), (8, 1), 0.99)
        dense = np.ones((1024, 1024), dtype=bool)
        c_sparse = self._compile(compiler, [sparse], 1024, 1024, 1024)
        c_dense = self._compile(compiler, [dense], 1024, 1024, 1024)
        assert c_sparse is not c_dense
        assert c_dense.choice.is_dense_fallback
        assert not c_sparse.choice.is_dense_fallback
        assert compiler.cache_size() == 2
        # Each regime keeps hitting its own compiled kernel.
        assert self._compile(compiler, [sparse], 1024, 1024, 1024) is c_sparse
        assert self._compile(compiler, [dense], 1024, 1024, 1024) is c_dense

    def test_refresh_replaces_cache(self):
        compiler = PITCompiler(V100)
        sparse = granular_mask((256, 256), (8, 1), 0.99)
        c1 = self._compile(compiler, [sparse], 256, 256, 256)
        dense = np.ones((256, 256), dtype=bool)
        c2 = compiler.refresh(c1, [dense])
        assert c2.choice.is_dense_fallback
        # The refreshed kernel serves its spec; the old spec's kernel stays
        # valid for in-flight work instead of being clobbered.
        assert self._compile(compiler, [dense], 256, 256, 256) is c2
        assert self._compile(compiler, [sparse], 256, 256, 256) is c1

    def test_legacy_compile_matmul_shim_removed(self):
        """The one-release deprecation shim is gone: the PlanSpec API
        (``plan_spec`` + ``compile``) is the only compile entry point."""
        assert not hasattr(PITCompiler, "compile_matmul")

    def test_cold_compile_without_samples_raises(self):
        compiler = PITCompiler(V100)
        mask = granular_mask((256, 256), (8, 1), 0.99)
        spec = compiler.plan_spec([mask], 256, 256, 256)
        with pytest.raises(ValueError, match="make_samples"):
            compiler.compile(spec)
        # Once the plan is cached, compiling without samples is fine.
        compiler.compile(spec, [mask])
        assert compiler.compile(spec).choice is not None

    def test_estimate_with_fresh_mask(self):
        compiler = PITCompiler(V100)
        mask = granular_mask((1024, 1024), (8, 1), 0.99)
        compiled = self._compile(compiler, [mask], 1024, 1024, 1024)
        denser = granular_mask((1024, 1024), (8, 1), 0.5, seed=9)
        assert compiled.estimate_us(denser) > compiled.estimate_us(mask)


class TestPolicies:
    def test_seqlen_token_mask(self):
        mask = SeqLenPolicy.token_mask([2, 4], max_len=4)
        np.testing.assert_array_equal(
            mask, [True, True, False, False, True, True, True, True]
        )

    def test_seqlen_rejects_overflow(self):
        with pytest.raises(ValueError):
            SeqLenPolicy.token_mask([5], max_len=4)

    def test_paged_attention_gather(self):
        pool = np.arange(4 * 2 * 3, dtype=float).reshape(4, 2, 3)
        policy = PagedAttentionPolicy(page_size=2)
        k = policy.gather_pages(pool, [2, 0])
        np.testing.assert_array_equal(k[:2], pool[2])
        np.testing.assert_array_equal(k[2:], pool[0])

    def test_paged_attention_validates_table(self):
        policy = PagedAttentionPolicy(page_size=2)
        with pytest.raises(ValueError):
            policy.gather_pages(np.zeros((2, 2, 2)), [5])

    def test_decisions_labelled(self):
        assert SeqLenPolicy().decision().pit_axis == "m"
        assert PagedAttentionPolicy().decision().label == "paged-attention"
