"""Tests for micro-tiles and CoverAlgo, including Table 3's cover math."""

import numpy as np
import pytest

from repro.core import (
    CoverCache,
    MicroTile,
    SampleStack,
    batched_matmul_workload,
    count_covering_microtiles,
    cover_grid,
    coverage_waste,
    covered_sparsity,
    dense_matmul_workload,
    derive_microtile,
    gcd_microtile_shape,
    matmul_microtiled_op,
    matmul_workload,
)
from repro.hw import V100, TileConfig
from repro.tensor import Layout


def granular_mask(shape, granularity, sparsity, seed=0):
    """Random mask whose non-zeros come in `granularity`-shaped blocks."""
    gh, gw = granularity
    rng = np.random.default_rng(seed)
    grid = rng.random((shape[0] // gh, shape[1] // gw)) >= sparsity
    return np.kron(grid, np.ones(granularity, dtype=bool))


class TestMicroTile:
    def test_str(self):
        assert str(MicroTile((1, 32))) == "1x32"

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            MicroTile((0, 4))
        with pytest.raises(ValueError):
            MicroTile((1, 2, 3))

    def test_contig_bytes_by_layout(self):
        m = MicroTile((1, 32))
        assert m.contig_bytes("float32", Layout.ROW_MAJOR) == 128
        assert m.contig_bytes("float32", Layout.COL_MAJOR) == 4

    def test_saturates_transaction(self):
        assert MicroTile((1, 8)).saturates_transaction(
            "float32", Layout.ROW_MAJOR, V100
        )
        assert not MicroTile((8, 1)).saturates_transaction(
            "float32", Layout.ROW_MAJOR, V100
        )


class TestDeriveMicrotile:
    def test_m_axis_row_microtile(self):
        # Paper: "If M is the PIT-axis, the micro-tile size will be [1, K]".
        tile = TileConfig(32, 64, 16)
        assert derive_microtile(tile, "m", operand="A").shape == (1, 64)

    def test_k_axis_column_microtile(self):
        tile = TileConfig(32, 64, 16)
        assert derive_microtile(tile, "k", operand="A").shape == (32, 1)
        assert derive_microtile(tile, "k", operand="B").shape == (1, 16)

    def test_n_axis_on_b(self):
        tile = TileConfig(32, 64, 16)
        assert derive_microtile(tile, "n", operand="B").shape == (64, 1)

    def test_axis_not_touching_operand(self):
        with pytest.raises(ValueError):
            derive_microtile(TileConfig(32, 32, 32), "n", operand="A")

    def test_microtiled_op_record(self):
        op = matmul_microtiled_op(TileConfig(4, 4, 4), "m")
        assert op.input_microtile_sizes[0].shape == (1, 4)
        assert op.input_microtile_sizes[1] is None  # B read densely
        assert op.output_microtile_size.shape == (1, 4)
        assert op.tile_output_format == (4, 4)

    def test_microtiled_op_bad_axis(self):
        with pytest.raises(ValueError):
            matmul_microtiled_op(TileConfig(4, 4, 4), "q")


class TestCoverGrid:
    def test_exact_cover(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        mask[5, 7] = True
        grid = cover_grid(mask, (4, 4))
        assert grid.shape == (2, 2)
        assert grid[0, 0] and grid[1, 1]
        assert not grid[0, 1] and not grid[1, 0]

    def test_padding_of_partial_tiles(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[4, 4] = True
        grid = cover_grid(mask, (4, 4))
        assert grid.shape == (2, 2)
        assert grid[1, 1]

    def test_rejects_non2d(self):
        with pytest.raises(ValueError):
            cover_grid(np.zeros((2, 2, 2), dtype=bool), (1, 1))

    def test_count(self):
        mask = np.eye(16, dtype=bool)
        assert count_covering_microtiles(mask, MicroTile((4, 4))) == 4


class TestTable3CoverMath:
    """The 'Sparsity Ratio After Cover' column of Table 3 is pure cover math;
    these reproduce the paper's numbers from seeded random masks."""

    @pytest.mark.parametrize(
        "granularity,sparsity,microtile,expected_after",
        [
            ((2, 1), 0.95, (16, 1), 0.6639),
            ((4, 1), 0.95, (16, 1), 0.8145),
            ((8, 1), 0.95, (8, 1), 0.95),
            ((8, 1), 0.99, (32, 1), 0.9606),
            ((32, 1), 0.95, (32, 1), 0.95),
            ((32, 1), 0.99, (32, 1), 0.99),
        ],
    )
    def test_covered_sparsity_matches_paper(
        self, granularity, sparsity, microtile, expected_after
    ):
        mask = granular_mask((4096, 4096), granularity, sparsity, seed=11)
        after = covered_sparsity(mask, microtile)
        assert after == pytest.approx(expected_after, abs=0.01)

    def test_coverage_waste_increases_with_cover_size(self):
        mask = granular_mask((1024, 1024), (1, 1), 0.99, seed=2)
        w8 = coverage_waste(mask, (8, 8))
        w32 = coverage_waste(mask, (32, 32))
        assert w32 > w8

    def test_zero_mask_no_waste(self):
        assert coverage_waste(np.zeros((64, 64), dtype=bool), (8, 8)) == 0.0


class TestCoverPyramid:
    """The pyramid-derived grids must equal naive cover_grid bit-for-bit —
    including non-divisible extents (partial trailing tiles) and the
    transposed-orientation reuse."""

    def test_property_random_masks_and_shapes(self):
        rng = np.random.default_rng(42)
        for trial in range(25):
            rows = int(rng.integers(1, 180))
            cols = int(rng.integers(1, 180))
            mask = rng.random((rows, cols)) < rng.uniform(0.02, 0.4)
            cache = CoverCache(mask)
            shapes = [
                (int(rng.integers(1, 50)), int(rng.integers(1, 50)))
                for _ in range(8)
            ]
            for shape in shapes:
                np.testing.assert_array_equal(
                    cache.grid(shape), cover_grid(mask, shape),
                    err_msg=f"trial {trial} shape {shape} mask {mask.shape}",
                )
                np.testing.assert_array_equal(
                    cache.grid(shape, transposed=True),
                    cover_grid(mask.T, shape),
                    err_msg=f"trial {trial} shape {shape} transposed",
                )

    def test_chained_derivation_through_intermediate_levels(self):
        """(1, 8) then (1, 16) then (1, 48): the coarser grids derive from
        the finer ones (including across a non-power-of-two jump) and must
        still match the from-scratch scan."""
        rng = np.random.default_rng(3)
        mask = rng.random((100, 200)) < 0.1
        cache = CoverCache(mask)
        for shape in [(1, 8), (1, 16), (1, 48), (4, 16), (8, 48)]:
            np.testing.assert_array_equal(
                cache.grid(shape), cover_grid(mask, shape)
            )

    def test_transposed_grid_is_a_view_not_a_copy(self):
        """The transposition identity serves the other orientation as a
        numpy view of the canonical grid — never a second materialization."""
        mask = np.random.default_rng(5).random((64, 96)) < 0.2
        cache = CoverCache(mask)
        canonical = cache.grid((16, 8))
        flipped = cache.grid((8, 16), transposed=True)
        assert np.shares_memory(canonical, flipped)

    def test_counts_match_grid_marginals(self):
        mask = np.random.default_rng(6).random((70, 90)) < 0.15
        cache = CoverCache(mask)
        for shape in [(1, 8), (16, 1), (5, 7)]:
            grid = cover_grid(mask, shape)
            np.testing.assert_array_equal(
                cache.col_counts(shape), grid.sum(axis=0)
            )
            np.testing.assert_array_equal(
                cache.row_counts(shape), grid.sum(axis=1)
            )
            assert cache.live_rows(shape) == int(grid.any(axis=1).sum())
            assert cache.num_microtiles(shape) == int(grid.sum())

    def test_pyramid_disabled_matches_naive(self):
        mask = np.random.default_rng(7).random((33, 61)) < 0.2
        naive = CoverCache(mask, pyramid=False)
        fast = CoverCache(mask)
        for shape in [(1, 4), (4, 1), (3, 3)]:
            np.testing.assert_array_equal(
                naive.grid(shape), fast.grid(shape)
            )

    def test_gcd_microtile_shape(self):
        assert gcd_microtile_shape([(1, 8), (1, 12)]) == (1, 4)
        assert gcd_microtile_shape([(8, 1), (1, 8)]) == (1, 1)
        assert gcd_microtile_shape([(16, 4)]) == (16, 4)
        with pytest.raises(ValueError):
            gcd_microtile_shape([])
        with pytest.raises(ValueError):
            gcd_microtile_shape([(0, 4)])


class TestSampleStack:
    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            SampleStack([])
        with pytest.raises(ValueError):
            SampleStack([np.ones((4, 4), dtype=bool),
                         np.ones((4, 5), dtype=bool)])

    def test_grids_match_per_sample_cover(self):
        rng = np.random.default_rng(11)
        samples = [rng.random((50, 70)) < 0.2 for _ in range(3)]
        stack = SampleStack(samples)
        stack.prime([(1, 8), (16, 1), (3, 5)])
        for shape in [(1, 8), (16, 1), (3, 5)]:
            grids = stack.grids(shape)
            tgrids = stack.grids(shape, transposed=True)
            for s, sample in enumerate(samples):
                np.testing.assert_array_equal(
                    grids[s], cover_grid(sample, shape)
                )
                np.testing.assert_array_equal(
                    tgrids[s], cover_grid(sample.T, shape)
                )

    def test_batched_workload_equals_scalar(self):
        """The [S, G] vectorized pass must reproduce the per-sample
        matmul_workload results exactly, in both orientations."""
        from repro.hw import TileConfig as TC

        rng = np.random.default_rng(13)
        samples = [rng.random((96, 130)) < p for p in (0.05, 0.2, 0.6)]
        stack = SampleStack(samples)
        cases = [
            (TC(32, 16, 32), "m", "A"),
            (TC(16, 32, 8), "k", "A"),
            (TC(32, 16, 32), "n", "B"),
            (TC(8, 16, 32), "k", "B"),
        ]
        for tile, axis, operand in cases:
            batched = batched_matmul_workload(
                stack, tile, axis, 64, sparse_operand=operand
            )
            for s, sample in enumerate(samples):
                scalar = matmul_workload(
                    sample, tile, axis, 64, sparse_operand=operand
                )
                assert batched[s] == scalar, (tile, axis, operand, s)

    def test_nnz_per_sample(self):
        samples = [np.eye(8, dtype=bool), np.ones((8, 8), dtype=bool)]
        stack = SampleStack(samples)
        assert stack.nnz.tolist() == [8, 64]
        assert stack.num_samples == 2
        assert stack.sample_shape == (8, 8)


class TestMatmulWorkload:
    def test_dense_workload(self):
        wl = dense_matmul_workload(128, 256, 64, TileConfig(32, 32, 32))
        assert wl.num_output_tiles == 4 * 2
        assert wl.total_k_steps == 8 * 8

    def test_row_sparse_m_axis(self):
        """Half the rows zero -> half the K-steps of dense."""
        tile = TileConfig(32, 32, 32)
        mask = np.zeros((256, 256), dtype=bool)
        mask[:128, :] = True
        wl = matmul_workload(mask, tile, "m", 256)
        dense = dense_matmul_workload(256, 256, 256, tile)
        assert wl.total_k_steps == dense.total_k_steps // 2
        assert wl.num_output_tiles == dense.num_output_tiles // 2
        assert wl.wasted_fraction == pytest.approx(0.0)

    def test_unaligned_rows_merge_across_tiles(self):
        """PIT's point: 32 scattered non-zero rows still fill one 32-row tile."""
        tile = TileConfig(32, 32, 32)
        mask = np.zeros((1024, 32), dtype=bool)
        mask[::32, :] = True  # 32 rows, one per 32-row band
        wl = matmul_workload(mask, tile, "m", 32)
        assert wl.total_k_steps == 1  # merged into a single tile
        assert wl.num_output_tiles == 1

    def test_k_axis_skips_zero_columns(self):
        tile = TileConfig(32, 32, 32)
        mask = np.zeros((256, 256), dtype=bool)
        mask[:, :64] = True  # only 64 of 256 k-columns alive
        wl = matmul_workload(mask, tile, "k", 128)
        dense = dense_matmul_workload(256, 256, 128, tile)
        assert wl.total_k_steps == dense.total_k_steps // 4

    def test_sparse_b_n_axis(self):
        tile = TileConfig(32, 32, 32)
        mask = np.zeros((256, 256), dtype=bool)  # B[k, n]
        mask[:, :128] = True  # half the output columns alive
        wl = matmul_workload(mask, tile, "n", 256, sparse_operand="B")
        dense = dense_matmul_workload(256, 256, 256, tile)
        assert wl.total_k_steps == dense.total_k_steps // 2

    def test_empty_mask(self):
        wl = matmul_workload(
            np.zeros((64, 64), dtype=bool), TileConfig(32, 32, 32), "m", 64
        )
        assert wl.is_empty
        assert wl.num_output_tiles == 0

    def test_bad_axis_operand_combo(self):
        with pytest.raises(ValueError):
            matmul_workload(
                np.zeros((8, 8), dtype=bool), TileConfig(8, 8, 8), "n", 8
            )

    def test_cover_cache_consistent(self):
        mask = granular_mask((512, 512), (2, 1), 0.9, seed=5)
        tile = TileConfig(32, 32, 32)
        direct = matmul_workload(mask, tile, "k", 512)
        cached = matmul_workload(CoverCache(mask), tile, "k", 512)
        assert direct == cached
