"""Tests for tensor-expression parsing and PIT-axis inference (Theorem 1)."""

import pytest

from repro.core import (
    OPERATOR_EXPRESSIONS,
    TABLE1_PIT_AXES,
    AxisKind,
    ParseError,
    ReduceOp,
    classify_axes,
    get_operator_expr,
    is_pit_axis,
    parse_expr,
    pit_axes,
    table1_rows,
)


class TestParser:
    def test_matmul(self):
        e = parse_expr("C[m, n] += A[m, k] * B[k, n]")
        assert e.output.name == "C"
        assert e.input_names() == ("A", "B")
        assert e.reduce_op is ReduceOp.SUM
        assert e.elementwise_op == "*"
        assert e.all_axes() == ("m", "n", "k")

    def test_vector_add(self):
        e = parse_expr("C[p] = A[p] + B[p]")
        assert e.reduce_op is ReduceOp.NONE
        assert e.elementwise_op == "+"

    def test_compound_indices(self):
        e = parse_expr("C[n, f, x, y] += A[n, m, x+i, y+j] * B[f, m, i, j]")
        assert e.derived_axes() == frozenset({"x", "i", "y", "j"})
        a = e.tensor("A")
        assert a.indices[2].is_compound
        assert a.indices[2].axes == ("x", "i")

    def test_max_reduction(self):
        e = parse_expr("C[p] max= A[p, l]")
        assert e.reduce_op is ReduceOp.MAX

    def test_axis_position(self):
        e = parse_expr("C[m, n] += A[m, k] * B[k, n]")
        assert e.tensor("A").axis_position("k") == 1
        assert e.tensor("B").axis_position("k") == 0
        assert e.tensor("A").axis_position("n") is None

    def test_str_roundtrip_info(self):
        e = parse_expr("C[m, n] += A[m, k] * B[k, n]")
        assert str(e.tensor("A")) == "A[m, k]"

    @pytest.mark.parametrize(
        "bad",
        [
            "C[m, n] A[m, k]",            # no assignment
            "C[] += A[m]",                # empty indices
            "C[m] += A[m] * A[m]",        # duplicate names
            "C[m, q] += A[m, k] * B[k, n]",  # output axis from nowhere
            "C[m] = A[m, k]",             # reduction without combinator
            "C[m] += A[m, k+k]",          # repeated axis in a slot
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_expr(bad)

    def test_unbalanced_brackets(self):
        with pytest.raises(ParseError):
            parse_expr("C[m] += A[m * B[m]")


class TestTheorem1:
    def test_table1_reproduced(self):
        """The headline check: inferred PIT-axes match Table 1 exactly."""
        for name, _, inferred in table1_rows():
            assert frozenset(inferred) == frozenset(TABLE1_PIT_AXES[name]), name

    def test_spatial_axes_are_pit(self):
        e = parse_expr("C[m, n] += A[m, k] * B[k, n]")
        axes = classify_axes(e)
        assert axes["m"].kind is AxisKind.SPATIAL and axes["m"].is_pit
        assert axes["n"].kind is AxisKind.SPATIAL and axes["n"].is_pit

    def test_sum_reduction_axis_is_pit(self):
        e = parse_expr("C[m, n] += A[m, k] * B[k, n]")
        info = classify_axes(e)["k"]
        assert info.kind is AxisKind.REDUCTION and info.is_pit

    def test_derived_axes_are_not_pit(self):
        e = get_operator_expr("Convolution")
        axes = classify_axes(e)
        for name in ("x", "y", "i", "j"):
            assert axes[name].kind is AxisKind.DERIVED
            assert not axes[name].is_pit

    def test_conv_pit_axes(self):
        assert frozenset(pit_axes(get_operator_expr("Convolution"))) == {
            "n",
            "m",
            "f",
        }

    def test_is_pit_axis_raises_on_unknown(self):
        e = get_operator_expr("MatMul")
        with pytest.raises(KeyError):
            is_pit_axis(e, "z")

    def test_every_registered_operator_parses(self):
        for name in OPERATOR_EXPRESSIONS:
            expr = get_operator_expr(name)
            assert expr.all_axes()

    def test_unknown_operator(self):
        with pytest.raises(KeyError, match="MatMul"):
            get_operator_expr("FlashAttention")

    def test_reasons_are_informative(self):
        axes = classify_axes(get_operator_expr("Convolution"))
        assert "index arithmetic" in axes["x"].reason
        assert "commutative" in axes["m"].reason
