"""Tests for the model-level backends (padding/conversion/fusion semantics)."""

import numpy as np
import pytest

from repro.baselines import (
    DeepSpeedBackend,
    LongformerSBackend,
    MegaBlocksBackend,
    PITBackend,
    PyTorchBackend,
    PyTorchSBackend,
    TurboTransformerBackend,
    TutelBackend,
    UnsupportedModelError,
    length_buckets,
)
from repro.hw import A100, V100, MemoryTracker
from repro.sparsity import Router, longformer_mask_stats


LENGTHS = np.array([16, 40, 100, 128])


def total_us(reports):
    return sum(r.latency_us for r in reports)


def convert_us(reports):
    return sum(r.convert_us for r in reports)


class TestPaddingSemantics:
    def test_pytorch_pads_to_max(self):
        assert PyTorchBackend(V100).padded_tokens(LENGTHS) == 4 * 128

    def test_pytorch_s_pads_to_block32(self):
        assert PyTorchSBackend(V100).padded_tokens(LENGTHS) == 32 + 64 + 128 + 128

    def test_pit_exact_tokens(self):
        assert PITBackend(V100).padded_tokens(LENGTHS) == int(LENGTHS.sum())

    def test_turbo_buckets(self):
        buckets = length_buckets(LENGTHS, 2)
        assert len(buckets) == 2
        assert TurboTransformerBackend(V100).padded_tokens(LENGTHS) < 4 * 128


class TestLinear:
    def test_pit_faster_than_pytorch(self):
        pt = total_us(PyTorchBackend(V100).linear(LENGTHS, 768, 768))
        pit = total_us(PITBackend(V100).linear(LENGTHS, 768, 768))
        assert pit < pt

    def test_pytorch_s_charges_conversion(self):
        reports = PyTorchSBackend(V100).linear(LENGTHS, 768, 768)
        assert convert_us(reports) > 0

    def test_memory_booked(self):
        mem = MemoryTracker(V100)
        PyTorchBackend(V100).linear(LENGTHS, 768, 768, mem=mem)
        assert mem.current_bytes == 4 * 128 * 768 * 4


class TestFFN:
    def test_pit_exploits_relu_sparsity(self):
        pit = PITBackend(V100)
        dense = total_us(pit.ffn(LENGTHS, 768, 3072, activation="relu"))
        sparse = total_us(
            pit.ffn(LENGTHS, 768, 3072, activation="relu", act_sparsity=0.99)
        )
        assert sparse < dense

    def test_gelu_ignores_act_sparsity(self):
        # Fresh backends: the once-per-batch detector state must not leak
        # between the two comparisons.
        a = total_us(
            PITBackend(V100).ffn(LENGTHS, 768, 3072, activation="gelu")
        )
        b = total_us(
            PITBackend(V100).ffn(
                LENGTHS, 768, 3072, activation="gelu", act_sparsity=0.99
            )
        )
        assert a == pytest.approx(b)

    def test_pytorch_cannot_exploit(self):
        pt = PyTorchBackend(V100)
        a = total_us(pt.ffn(LENGTHS, 768, 3072, activation="relu"))
        b = total_us(
            pt.ffn(LENGTHS, 768, 3072, activation="relu", act_sparsity=0.99)
        )
        assert a == pytest.approx(b)


class TestAttention:
    def test_pit_varlen_beats_padded(self):
        skewed = np.array([8, 8, 8, 256])
        pt = total_us(PyTorchBackend(V100).attention(skewed, 12, 64))
        pit = total_us(PITBackend(V100).attention(skewed, 12, 64))
        assert pit < pt

    def test_sparse_attention_with_stats(self):
        stats = longformer_mask_stats(1024, 128, num_global=8, seed=0)
        lengths = np.array([1024])
        dense = total_us(PyTorchBackend(V100).attention(lengths, 12, 64))
        pit = total_us(
            PITBackend(V100).attention(lengths, 12, 64, attn_mask=stats)
        )
        assert pit < dense

    def test_pytorch_s_block_cover_between(self):
        stats = longformer_mask_stats(1024, 128, num_global=8, seed=0)
        lengths = np.array([1024])
        pit = total_us(PITBackend(V100).attention(lengths, 12, 64, attn_mask=stats))
        pts = total_us(
            PyTorchSBackend(V100).attention(lengths, 12, 64, attn_mask=stats)
        )
        assert pts > pit

    def test_longformer_s_no_waste_but_rearranges(self):
        lengths = np.array([2048])
        lf = LongformerSBackend(V100, window=512, num_global=16)
        reports = lf.attention(lengths, 12, 64)
        assert convert_us(reports) > 0  # the rearrangement cost


class TestMoE:
    @pytest.fixture()
    def routing(self):
        return Router(64, concentration=0.4, seed=0).route(4096, seed=1)

    def test_ordering_matches_figure8(self, routing):
        """PIT < MegaBlocks < DeepSpeed < Tutel; PyTorch worst or near."""
        d, f = 768, 3072
        pit = total_us(PITBackend(A100, "float16").moe_ffn(routing, d, f))
        mb = total_us(MegaBlocksBackend(A100, "float16").moe_ffn(routing, d, f))
        ds = total_us(DeepSpeedBackend(A100, "float16").moe_ffn(routing, d, f))
        tu = total_us(TutelBackend(A100, "float16").moe_ffn(routing, d, f))
        pt = total_us(PyTorchBackend(A100, "float16").moe_ffn(routing, d, f))
        assert pit < mb < tu
        assert pit < ds < tu
        assert pit < pt

    def test_tutel_memory_scales_with_imbalance(self, routing):
        mem = MemoryTracker(A100)
        TutelBackend(A100, "float16").moe_ffn(routing, 768, 3072, mem=mem)
        padded = routing.num_experts * routing.max_tokens_per_expert
        assert mem.current_bytes >= padded * 3072 * 2  # fp16 hidden buffer

    def test_megablocks_fp32_unsupported(self):
        with pytest.raises(UnsupportedModelError):
            MegaBlocksBackend(A100, "float32")

    def test_pit_cost_tracks_total_tokens_not_max(self):
        even = Router(8, concentration=100.0, seed=0).route(4096, seed=0)
        skew = Router(8, concentration=0.05, seed=4).route(4096, seed=0)
        pit = PITBackend(A100, "float16")
        t_even = total_us(pit.moe_ffn(even, 768, 3072))
        t_skew = total_us(pit.moe_ffn(skew, 768, 3072))
        assert t_skew < 2.0 * t_even
        tutel = TutelBackend(A100, "float16")
        assert total_us(tutel.moe_ffn(skew, 768, 3072)) > 2.0 * total_us(
            tutel.moe_ffn(even, 768, 3072)
        )


class TestFusionMemory:
    def test_fused_backend_skips_intermediates(self):
        ds = DeepSpeedBackend(V100)
        mem_plain = MemoryTracker(V100)
        ds.set_fusion(False)
        ds.ffn(LENGTHS, 768, 3072, mem=mem_plain)
        mem_fused = MemoryTracker(V100)
        ds.set_fusion(True)
        ds.ffn(LENGTHS, 768, 3072, mem=mem_fused)
        ds.set_fusion(False)
        assert mem_fused.current_bytes < mem_plain.current_bytes

    def test_non_fusing_backend_unaffected(self):
        pt = PyTorchBackend(V100)
        pt.set_fusion(True)  # PyTorch doesn't fuse; flag must not stick
        assert not pt._fusion_active


class TestTurbo:
    def test_rejects_non_bert(self):
        t = TurboTransformerBackend(V100)
        with pytest.raises(UnsupportedModelError, match="missing"):
            t.check_model("opt", 128)

    def test_rejects_long_sequences(self):
        t = TurboTransformerBackend(V100)
        with pytest.raises(UnsupportedModelError, match="crash"):
            t.check_model("bert", 4096)

    def test_no_moe(self):
        t = TurboTransformerBackend(V100)
        routing = Router(4, seed=0).route(64, seed=0)
        with pytest.raises(UnsupportedModelError):
            t.moe_ffn(routing, 64, 128)
