"""Tests for the tile/kernel cost model.

These pin down the *qualitative* properties every figure depends on: bigger
tiles are more efficient per FLOP, wave quantization, the sparse-kernel cost
being Algorithm 1's num_tiles x tile_cost, and the SRead gather surcharge
vanishing once micro-tiles saturate a transaction.
"""

import math

import pytest

from repro.hw import (
    A100,
    V100,
    TileConfig,
    compute_efficiency,
    dense_matmul_time_us,
    elementwise_time_us,
    kernel_time_us,
    layernorm_time_us,
    matmul_step_time_us,
    matmul_tile_fixed_time_us,
    matmul_tile_time_us,
    predicted_finish_us,
    softmax_time_us,
    sparse_matmul_time_us,
)


class TestTileConfig:
    def test_describe(self):
        assert TileConfig(32, 64, 16).describe() == "[32, 64] x [64, 16]"

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TileConfig(0, 32, 32)

    def test_output_elems(self):
        assert TileConfig(8, 16, 4).output_elems == 32


class TestComputeEfficiency:
    def test_large_square_tile_is_fully_efficient(self):
        assert compute_efficiency(TileConfig(32, 32, 32)) == pytest.approx(1.0)

    def test_small_tiles_less_efficient(self):
        small = compute_efficiency(TileConfig(8, 8, 8))
        large = compute_efficiency(TileConfig(32, 32, 32))
        assert small < large

    def test_monotone_in_output_elems(self):
        effs = [compute_efficiency(TileConfig(s, 32, s)) for s in (8, 16, 32, 64)]
        assert effs == sorted(effs)

    def test_skewed_tiles_penalized(self):
        square = compute_efficiency(TileConfig(32, 32, 32))
        skewed = compute_efficiency(TileConfig(1024, 32, 1))
        assert skewed < square


class TestTileTime:
    def test_per_flop_cost_decreases_with_tile_size(self):
        """The root of Figure 3a: 8x8 tiles cost more per useful FLOP."""
        def per_flop(t):
            flops = 2 * t.tm * 4096 * t.tn
            return matmul_tile_time_us(t, 4096, "float32", V100) / flops

        assert per_flop(TileConfig(8, 32, 8)) > per_flop(TileConfig(16, 32, 16))
        assert per_flop(TileConfig(16, 32, 16)) > per_flop(TileConfig(32, 32, 32))

    def test_affine_in_k_steps(self):
        t = TileConfig(32, 32, 32)
        t1 = matmul_tile_time_us(t, 32, "float32", V100)
        t2 = matmul_tile_time_us(t, 64, "float32", V100)
        t3 = matmul_tile_time_us(t, 96, "float32", V100)
        assert t2 - t1 == pytest.approx(t3 - t2)
        step = matmul_step_time_us(t, "float32", V100)
        assert t2 - t1 == pytest.approx(step)

    def test_fixed_cost_positive(self):
        assert matmul_tile_fixed_time_us(TileConfig(32, 32, 32), "float32", V100) > 0

    def test_load_efficiency_slows_memory_bound_tiles(self):
        t = TileConfig(8, 32, 8)  # memory bound
        fast = matmul_step_time_us(t, "float32", V100, load_efficiency=1.0)
        slow = matmul_step_time_us(t, "float32", V100, load_efficiency=0.25)
        assert slow > fast

    def test_tensor_core_speeds_up_fp16(self):
        t = TileConfig(64, 32, 64)
        cuda = matmul_tile_time_us(t, 4096, "float16", A100, tensor_core=False)
        tc = matmul_tile_time_us(t, 4096, "float16", A100, tensor_core=True)
        # tensor_core=False uses peak fp16 (already tensor-core rate on A100),
        # so compare against an explicitly compute-bound fp32 instead.
        fp32 = matmul_tile_time_us(t, 4096, "float32", A100)
        assert tc <= fp32

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            matmul_tile_time_us(TileConfig(32, 32, 32), 0, "float32", V100)

    def test_rejects_bad_load_efficiency(self):
        with pytest.raises(ValueError):
            matmul_step_time_us(TileConfig(32, 32, 32), "float32", V100, load_efficiency=0.0)


class TestKernelTime:
    def test_wave_quantization(self):
        """81 tiles on 80 SMs take two waves, 80 take one."""
        one = kernel_time_us(V100.num_sms, 10.0, V100)
        two = kernel_time_us(V100.num_sms + 1, 10.0, V100)
        assert two - one == pytest.approx(10.0)

    def test_zero_tiles_costs_launch_only(self):
        assert kernel_time_us(0, 10.0, V100) == pytest.approx(V100.kernel_launch_us)

    def test_negative_tiles_rejected(self):
        with pytest.raises(ValueError):
            kernel_time_us(-1, 10.0, V100)

    def test_dense_matmul_scales_with_batch(self):
        t = TileConfig(32, 32, 32)
        single = dense_matmul_time_us(1024, 1024, 1024, t, "float32", V100)
        batched = dense_matmul_time_us(1024, 1024, 1024, t, "float32", V100, batch=4)
        assert batched > 3 * single


class TestSparseMatmulTime:
    def test_matches_dense_when_workload_equal(self):
        """A sparse kernel covering everything costs about the dense kernel."""
        t = TileConfig(32, 32, 32)
        m = k = n = 2048
        tiles = (m // 32) * (n // 32)
        steps = tiles * (k // 32)
        dense = dense_matmul_time_us(m, k, n, t, "float32", V100)
        sparse = sparse_matmul_time_us(steps, tiles, t, "float32", V100)
        assert sparse == pytest.approx(dense, rel=0.05)

    def test_scales_down_with_covered_tiles(self):
        t = TileConfig(32, 32, 32)
        full = sparse_matmul_time_us(64000, 1000, t, "float32", V100)
        tenth = sparse_matmul_time_us(6400, 100, t, "float32", V100)
        assert tenth < full / 5

    def test_narrow_microtile_gather_surcharge(self):
        """Micro-tiles narrower than one transaction pay a bandwidth penalty."""
        t = TileConfig(8, 32, 8)  # memory-bound tile shape
        wide = sparse_matmul_time_us(
            1000, 100, t, "float32", V100, sread_contig_bytes=128
        )
        narrow = sparse_matmul_time_us(
            1000, 100, t, "float32", V100, sread_contig_bytes=4
        )
        assert narrow > wide

    def test_detector_cost_added(self):
        t = TileConfig(32, 32, 32)
        base = sparse_matmul_time_us(100, 10, t, "float32", V100)
        with_det = sparse_matmul_time_us(100, 10, t, "float32", V100, detector_us=50.0)
        assert with_det == pytest.approx(base + 50.0)

    def test_rejects_negative_workload(self):
        with pytest.raises(ValueError):
            sparse_matmul_time_us(-1, 0, TileConfig(32, 32, 32), "float32", V100)


class TestBandwidthBoundOps:
    def test_elementwise_scales_with_elements(self):
        small = elementwise_time_us(1 << 20, "float32", V100)
        large = elementwise_time_us(1 << 24, "float32", V100)
        assert large > 10 * small

    def test_softmax_more_passes_than_layernorm(self):
        sm = softmax_time_us(4096, 4096, "float32", V100)
        ln = layernorm_time_us(4096, 4096, "float32", V100)
        assert sm > ln

    def test_fp16_halves_traffic(self):
        fp32 = elementwise_time_us(1 << 24, "float32", V100)
        fp16 = elementwise_time_us(1 << 24, "float16", V100)
        assert fp16 < fp32


class TestPredictedFinish:
    def test_busy_replica_waits_then_runs(self):
        assert predicted_finish_us(100.0, 250.0, 40.0) == pytest.approx(290.0)

    def test_idle_replica_starts_at_close(self):
        assert predicted_finish_us(100.0, 0.0, 40.0) == pytest.approx(140.0)

    def test_unservable_batch_prices_infinite(self):
        assert predicted_finish_us(100.0, 0.0, float("inf")) == float("inf")

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            predicted_finish_us(0.0, 0.0, -1.0)
