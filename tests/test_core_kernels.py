"""Tests for detector, SRead/SWrite, and the generated sparse kernels.

The central correctness property — permutation invariance — is exercised
here both with fixed seeds and with hypothesis-driven random masks and
index orders.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DenseMatmulKernel,
    GroupedMatmulKernel,
    MicroTile,
    SparseMatmulKernel,
    build_index,
    build_row_index,
    gather_microtiles,
    index_construction_time_us,
    scatter_microtiles,
    sread_cols,
    sread_rows,
    swrite_cols,
    swrite_rows,
)
from repro.hw import V100, TileConfig


class TestDetector:
    def test_index_covers_all_nonzeros(self):
        rng = np.random.default_rng(0)
        mask = rng.random((64, 64)) < 0.1
        idx = build_index(mask, MicroTile((1, 8)), V100)
        covered = np.zeros_like(mask)
        for br, bc in idx.positions:
            covered[br : br + 1, bc * 8 : (bc + 1) * 8] = True
        assert (covered | ~mask).all()

    def test_index_is_shuffled_but_complete(self):
        mask = np.ones((32, 32), dtype=bool)
        idx = build_index(mask, MicroTile((1, 8)), V100, seed=1)
        assert idx.num_microtiles == 32 * 4
        ordered = idx.ordered()
        assert not np.array_equal(idx.positions, ordered.positions)
        assert set(map(tuple, idx.positions)) == set(map(tuple, ordered.positions))

    def test_construction_cost_single_pass(self):
        """PIT's detector streams the tensor once — far below cuSPARSE's
        multi-pass conversion (Figure 18's premise)."""
        from repro.hw import stream_time_us, tensor_bytes

        t = index_construction_time_us((4096, 4096), "float32", V100, 1000)
        one_pass = stream_time_us(tensor_bytes((4096, 4096), "float32"), V100)
        assert t < 1.5 * one_pass + 2 * V100.kernel_launch_us

    def test_row_index(self):
        mask = np.zeros((16, 8), dtype=bool)
        mask[3] = True
        mask[11, 2] = True
        idx = build_row_index(mask, V100, seed=0)
        assert set(idx.rows.tolist()) == {3, 11}
        assert idx.num_rows == 2

    def test_row_index_rejects_non2d(self):
        with pytest.raises(ValueError):
            build_row_index(np.zeros(5, dtype=bool), V100)


class TestSReadSWrite:
    def test_row_roundtrip_any_order(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((16, 8))
        order = rng.permutation(16)
        gathered = sread_rows(data, order)
        restored = swrite_rows((16, 8), order, gathered)
        np.testing.assert_array_equal(restored, data)

    def test_col_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((8, 16))
        order = rng.permutation(16)
        restored = swrite_cols((8, 16), order, sread_cols(data, order))
        np.testing.assert_array_equal(restored, data)

    def test_swrite_length_mismatch(self):
        with pytest.raises(ValueError):
            swrite_rows((4, 4), np.array([0, 1]), np.zeros((3, 4)))

    def test_microtile_gather_scatter_roundtrip(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((20, 20))
        mask = rng.random((20, 20)) < 0.3
        data = data * mask
        idx = build_index(mask, MicroTile((4, 4)), V100, seed=7)
        blocks = gather_microtiles(data, idx)
        restored = scatter_microtiles((20, 20), idx, blocks)
        np.testing.assert_array_equal(restored, data)

    def test_scatter_count_mismatch(self):
        idx = build_index(np.ones((8, 8), dtype=bool), MicroTile((4, 4)), V100)
        with pytest.raises(ValueError):
            scatter_microtiles((8, 8), idx, np.zeros((1, 4, 4)))


class TestSparseMatmulKernel:
    @pytest.fixture()
    def problem(self):
        rng = np.random.default_rng(4)
        mask = rng.random((128, 96)) < 0.08
        a = rng.standard_normal((128, 96)) * mask
        b = rng.standard_normal((96, 64))
        return a, b, mask

    @pytest.mark.parametrize("axis", ["m", "k"])
    def test_matches_dense(self, problem, axis):
        a, b, mask = problem
        kern = SparseMatmulKernel(TileConfig(32, 32, 32), axis, V100)
        res = kern.run(a, b, mask=mask)
        np.testing.assert_allclose(res.output, a @ b, atol=1e-10)

    def test_sparse_b_axes(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((64, 96))
        mask = rng.random((96, 80)) < 0.1
        b = rng.standard_normal((96, 80)) * mask
        for axis in ("n", "k"):
            kern = SparseMatmulKernel(
                TileConfig(32, 32, 32), axis, V100, sparse_operand="B"
            )
            res = kern.run(a, b, mask=mask)
            np.testing.assert_allclose(res.output, a @ b, atol=1e-10)

    def test_seed_invariance(self, problem):
        """The PIT property: any index order gives the same result."""
        a, b, mask = problem
        kern = SparseMatmulKernel(TileConfig(32, 32, 32), "m", V100)
        out1 = kern.run(a, b, mask=mask, seed=0).output
        out2 = kern.run(a, b, mask=mask, seed=999).output
        np.testing.assert_allclose(out1, out2, atol=1e-10)

    def test_mask_none_uses_values(self, problem):
        a, b, mask = problem
        kern = SparseMatmulKernel(TileConfig(32, 32, 32), "m", V100)
        np.testing.assert_allclose(kern.run(a, b).output, a @ b, atol=1e-10)

    def test_report_fields(self, problem):
        a, b, mask = problem
        kern = SparseMatmulKernel(TileConfig(32, 32, 32), "m", V100)
        rep = kern.run(a, b, mask=mask).report
        assert rep.latency_us > 0
        assert 0 < rep.convert_us < rep.latency_us
        assert rep.detail["k_steps"] > 0

    def test_estimate_beats_dense_at_high_sparsity(self):
        rng = np.random.default_rng(6)
        mask = rng.random((4096, 4096)) < 0.01
        tile = TileConfig(32, 32, 64)
        sparse = SparseMatmulKernel(tile, "m", V100).estimate_us(mask, 4096)
        dense = DenseMatmulKernel(tile, V100).estimate_us(4096, 4096, 4096)
        assert sparse < dense

    def test_bad_axis_operand(self):
        with pytest.raises(ValueError):
            SparseMatmulKernel(TileConfig(8, 8, 8), "n", V100, sparse_operand="A")

    def test_bad_shapes(self):
        kern = SparseMatmulKernel(TileConfig(8, 8, 8), "m", V100)
        with pytest.raises(ValueError):
            kern.run(np.zeros((4, 5)), np.zeros((6, 4)))

    def test_wrong_mask_shape(self, problem):
        a, b, _ = problem
        kern = SparseMatmulKernel(TileConfig(8, 8, 8), "m", V100)
        with pytest.raises(ValueError):
            kern.run(a, b, mask=np.ones((2, 2), dtype=bool))


class TestGroupedMatmulKernel:
    def test_matches_per_expert_dense(self):
        rng = np.random.default_rng(7)
        tokens = rng.standard_normal((64, 16))
        weights = rng.standard_normal((4, 16, 24))
        assignment = rng.integers(0, 4, size=64)
        kern = GroupedMatmulKernel(TileConfig(16, 16, 16), V100)
        res = kern.run(tokens, weights, assignment)
        ref = np.zeros((64, 24))
        for t in range(64):
            ref[t] = tokens[t] @ weights[assignment[t]]
        np.testing.assert_allclose(res.output, ref, atol=1e-10)

    def test_empty_expert_ok(self):
        rng = np.random.default_rng(8)
        tokens = rng.standard_normal((8, 4))
        weights = rng.standard_normal((3, 4, 4))
        assignment = np.zeros(8, dtype=int)  # experts 1,2 unused
        kern = GroupedMatmulKernel(TileConfig(8, 8, 8), V100)
        res = kern.run(tokens, weights, assignment)
        assert res.report.detail["tokens_per_expert"] == [8, 0, 0]

    def test_rejects_bad_assignment(self):
        kern = GroupedMatmulKernel(TileConfig(8, 8, 8), V100)
        with pytest.raises(ValueError):
            kern.run(np.zeros((4, 4)), np.zeros((2, 4, 4)), np.array([0, 1, 2, 0]))

    def test_bucketing_matches_flatnonzero_reference(self):
        """The argsort bucketing replaced a per-expert flatnonzero sweep;
        bucket order, rng stream and outputs must match it bit-for-bit
        (empty experts included — they must not consume a permutation)."""
        rng = np.random.default_rng(21)
        tokens = rng.standard_normal((97, 8))
        weights = rng.standard_normal((6, 8, 10))
        assignment = rng.integers(0, 6, size=97)
        assignment[assignment == 3] = 0  # expert 3 goes empty
        kern = GroupedMatmulKernel(TileConfig(16, 16, 16), V100)
        res = kern.run(tokens, weights, assignment, seed=5)

        ref_rng = np.random.default_rng(5)
        ref = np.zeros((97, 10))
        counts = []
        for e in range(6):
            idx = np.flatnonzero(assignment == e)
            counts.append(idx.size)
            if idx.size == 0:
                continue
            idx = idx[ref_rng.permutation(idx.size)]
            ref[idx] = tokens[idx] @ weights[e]
        np.testing.assert_array_equal(res.output, ref)
        assert res.report.detail["tokens_per_expert"] == counts

    def test_uneven_distribution_costs_by_tiles(self):
        """Cost follows ceil(tokens/tm) per expert — the padding-free claim."""
        kern = GroupedMatmulKernel(TileConfig(32, 32, 32), V100)
        even = kern.estimate_us([32, 32], 64, 64, total_tokens=64)
        uneven = kern.estimate_us([63, 1], 64, 64, total_tokens=64)
        assert uneven == pytest.approx(even, rel=0.05)


class TestPermutationInvarianceProperty:
    """Hypothesis: for random masks and seeds, PIT's rearranged execution
    equals the dense reference — Theorem 1, checked empirically."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        density=st.floats(0.01, 0.5),
        axis=st.sampled_from(["m", "k"]),
    )
    def test_sparse_a(self, seed, density, axis):
        rng = np.random.default_rng(seed)
        m, k, n = rng.integers(8, 96), rng.integers(8, 96), rng.integers(8, 64)
        mask = rng.random((m, k)) < density
        a = rng.standard_normal((m, k)) * mask
        b = rng.standard_normal((k, n))
        kern = SparseMatmulKernel(TileConfig(16, 16, 16), axis, V100)
        res = kern.run(a, b, mask=mask, seed=seed // 2)
        np.testing.assert_allclose(res.output, a @ b, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_grouped_moe(self, seed):
        rng = np.random.default_rng(seed)
        tokens = rng.standard_normal((32, 8))
        weights = rng.standard_normal((5, 8, 12))
        assignment = rng.integers(0, 5, size=32)
        kern = GroupedMatmulKernel(TileConfig(8, 8, 8), V100)
        res = kern.run(tokens, weights, assignment, seed=seed % 97)
        ref = np.stack([tokens[i] @ weights[assignment[i]] for i in range(32)])
        np.testing.assert_allclose(res.output, ref, atol=1e-8)
