"""Tests for the serving layer: dynamic batching + plan-cache amortization."""

import numpy as np
import pytest

from repro.core import PlanCache
from repro.hw import V100
from repro.models import (
    bert_workload,
    longformer_workload,
    opt_inference_workload,
    switch_workload,
)
from repro.runtime import InferenceRequest, ServingEngine, merge_workloads


def make_engine(**kwargs):
    defaults = dict(max_batch_tokens=8192, max_batch_size=8)
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


class TestBatching:
    def test_compatible_requests_share_a_batch(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        engine.submit(bert_workload("mnli", 4, seed=1))
        batches = engine.plan_batches(engine._queue)
        assert len(batches) == 1
        assert len(batches[0]) == 2

    def test_incompatible_configs_do_not_batch(self):
        """Different architectures (and different activation-sparsity
        regimes) never share a batch."""
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        engine.submit(longformer_workload(seq_len=2048, batch_size=1, seed=0))
        batches = engine.plan_batches(engine._queue)
        assert len(batches) == 2
        assert all(len(b) == 1 for b in batches)

    def test_token_budget_splits_batches(self):
        engine = make_engine(max_batch_tokens=1024)
        for s in range(6):
            engine.submit(bert_workload("mnli", 4, seed=s))
        batches = engine.plan_batches(engine._queue)
        assert len(batches) > 1
        for batch in batches:
            max_len = max(r.max_len for r in batch)
            seqs = sum(r.workload.batch_size for r in batch)
            assert max_len * seqs <= 1024 or len(batch) == 1

    def test_batch_size_cap(self):
        engine = make_engine(max_batch_tokens=10**9, max_batch_size=3)
        for s in range(7):
            engine.submit(bert_workload("mnli", 2, seed=s))
        batches = engine.plan_batches(engine._queue)
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_moe_workloads_co_batch_on_matching_routing_stats(self):
        """Same-architecture MoE requests whose routing load statistics
        agree to within a quantization bucket share a batch — their tables
        merge through ``merge_routing`` instead of being refused."""
        engine = make_engine()
        engine.submit(switch_workload(8, 4, seed=0))
        engine.submit(switch_workload(8, 4, seed=0))
        batches = engine.plan_batches(engine._queue)
        assert len(batches) == 1
        assert len(batches[0]) == 2

    def test_moe_workloads_with_different_expert_counts_never_co_batch(self):
        engine = make_engine()
        engine.submit(switch_workload(8, 4, seed=0))
        engine.submit(switch_workload(16, 4, seed=0))
        batches = engine.plan_batches(engine._queue)
        assert len(batches) == 2

    def test_merged_moe_batch_serves_and_plans_grouped(self):
        engine = make_engine()
        engine.submit(switch_workload(8, 4, seed=0))
        engine.submit(switch_workload(8, 4, seed=0))
        report = engine.run()
        assert len(report.batches) == 1
        assert all(r.ok for r in report.requests)
        assert report.batches[0].plan_kinds.get("moe-grouped") is not None
        kinds = report.selection_summary()["plans_by_kind"]
        assert kinds["moe-grouped"]["resolved"] == 1

    def test_merge_concatenates_lengths(self):
        w1 = bert_workload("mnli", 4, seed=0)
        w2 = bert_workload("mnli", 4, seed=1)
        merged = merge_workloads([w1, w2])
        assert merged.batch_size == 8
        assert merged.total_tokens == w1.total_tokens + w2.total_tokens
        np.testing.assert_array_equal(
            merged.lengths, np.concatenate([w1.lengths, w2.lengths])
        )

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_workloads([])

    def test_merge_token_weight_averages_act_sparsity(self):
        w1 = opt_inference_workload("125m", 4, act_sparsity=0.9, seed=0)
        w2 = opt_inference_workload("125m", 4, act_sparsity=0.5, seed=1)
        merged = merge_workloads([w1, w2])
        expected = (
            0.9 * w1.total_tokens + 0.5 * w2.total_tokens
        ) / (w1.total_tokens + w2.total_tokens)
        assert merged.act_sparsity == pytest.approx(expected)

    def test_merge_rejects_mixed_act_sparsity_regimes(self):
        w1 = opt_inference_workload("125m", 4, act_sparsity=0.9, seed=0)
        w2 = opt_inference_workload("125m", 4, seed=1)
        w2.act_sparsity = None  # Workload is a plain (mutable) dataclass
        with pytest.raises(ValueError, match="activation"):
            merge_workloads([w1, w2])

    def test_merge_averages_attention_stats(self):
        w1 = longformer_workload(seq_len=2048, batch_size=1, seed=0)
        w2 = longformer_workload(seq_len=2048, batch_size=1, seed=3)
        merged = merge_workloads([w1, w2])
        s1, s2, sm = w1.attn_stats, w2.attn_stats, merged.attn_stats
        assert sm.seq == s1.seq
        assert sm.nnz == int(round((s1.nnz + s2.nnz) / 2))
        lo, hi = sorted((s1.covered_micro, s2.covered_micro))
        assert lo <= sm.covered_micro <= hi

    def test_merge_rejects_mixed_attention_metadata(self):
        w1 = longformer_workload(seq_len=2048, batch_size=1, seed=0)
        w2 = longformer_workload(seq_len=2048, batch_size=1, seed=1)
        w2.attn_stats = None
        with pytest.raises(ValueError, match="attention"):
            merge_workloads([w1, w2])

    def test_merge_rejects_different_models(self):
        w1 = bert_workload("mnli", 4, seed=0)
        w2 = opt_inference_workload("125m", 4, seed=0)
        with pytest.raises(ValueError, match="different models"):
            merge_workloads([w1, w2])

    def test_merge_concatenates_moe_routing(self):
        w1 = switch_workload(8, 4, seed=0)
        w2 = switch_workload(8, 4, seed=1)
        merged = merge_workloads([w1, w2])
        assert set(merged.routing_by_layer) == set(w1.routing_by_layer)
        for layer, routing in merged.routing_by_layer.items():
            r1 = w1.routing_by_layer[layer]
            r2 = w2.routing_by_layer[layer]
            assert routing.num_tokens == r1.num_tokens + r2.num_tokens
            np.testing.assert_array_equal(routing.counts, r1.counts + r2.counts)

    def test_lone_oversized_request_still_gets_a_batch(self):
        """A request bigger than the token budget cannot wait forever for a
        batch it will never fit — it runs alone."""
        engine = make_engine(max_batch_tokens=64)
        engine.submit(bert_workload("mnli", 4, seed=0))  # pads to ~184 > 64
        engine.submit(bert_workload("mnli", 4, seed=1))
        batches = engine.plan_batches(engine._queue)
        assert [len(b) for b in batches] == [1, 1]
        batched = sorted(r.request_id for b in batches for r in b)
        assert batched == [0, 1]

    def test_interleaved_signatures_accumulate_per_bucket(self):
        """A B A B A B arrival order yields one batch per signature, not
        six singletons — the open-batch bucket survives interleaving."""
        engine = make_engine()
        for s in range(3):
            engine.submit(bert_workload("mnli", 2, seed=s))
            engine.submit(longformer_workload(seq_len=2048, batch_size=1,
                                              seed=s))
        batches = engine.plan_batches(engine._queue)
        assert sorted(len(b) for b in batches) == [3, 3]
        for batch in batches:
            assert len({r.batch_signature() for r in batch}) == 1

    def test_size_cap_closes_before_token_budget(self):
        engine = make_engine(max_batch_tokens=10**9, max_batch_size=2)
        for s in range(5):
            engine.submit(bert_workload("mnli", 2, seed=s))
        batches = engine.plan_batches(engine._queue)
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_token_budget_closes_before_size_cap(self):
        # Seeds 0/1/2 pad to 368/660 tokens for 2/3 co-batched requests.
        engine = make_engine(max_batch_tokens=500, max_batch_size=100)
        for s in range(3):
            engine.submit(bert_workload("mnli", 4, seed=s))
        batches = engine.plan_batches(engine._queue)
        assert [len(b) for b in batches] == [2, 1]


class TestServingRun:
    def test_per_request_reports_sum_to_engine_totals(self):
        engine = make_engine()
        for s in range(6):
            engine.submit(bert_workload("mnli", 4, seed=s), arrival_us=s * 500.0)
        report = engine.run()
        assert len(report.requests) == 6
        # Tokens: per-request sums equal per-batch sums equal the total.
        assert report.total_tokens == sum(b.tokens for b in report.batches)
        assert report.total_tokens == sum(r.tokens for r in report.requests)
        # Selection: amortized per-request shares sum back to batch totals.
        assert sum(r.selection_us for r in report.requests) == pytest.approx(
            report.total_selection_us
        )
        # Makespan: first batch start to last batch completion.
        assert report.makespan_us == pytest.approx(
            max(b.start_us + b.exec_us for b in report.batches)
            - report.batches[0].start_us
        )
        assert report.throughput_tokens_per_s > 0

    def test_queueing_delay_accounting(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=0.0)
        engine.submit(bert_workload("mnli", 4, seed=1), arrival_us=1000.0)
        report = engine.run()
        for r in report.requests:
            assert r.queue_us >= 0
            assert r.start_us >= r.arrival_us
            assert r.latency_us == pytest.approx(r.queue_us + r.exec_us)
        # Batched together: the earlier request waits for the later arrival.
        assert len(report.batches) == 1
        assert report.requests[0].queue_us >= 1000.0

    def test_plan_cache_amortizes_across_runs(self):
        cache = PlanCache()
        engine = make_engine(plan_cache=cache)
        for s in range(4):
            engine.submit(bert_workload("mnli", 8, seed=s))
        engine.run()
        misses_after_warmup = cache.misses
        for s in range(4):
            engine.submit(bert_workload("mnli", 8, seed=s))
        report = engine.run()
        # Steady state: the same traffic shape introduces no new plans.
        assert cache.misses == misses_after_warmup
        assert cache.hits > 0
        assert report.plan_cache_stats["hit_rate"] > 0

    def test_warm_batches_select_faster(self):
        engine = make_engine()
        for s in range(10):
            engine.submit(bert_workload("mnli", 8, seed=s))
        report = engine.run()
        summary = report.selection_summary()
        if summary["warm_batches"]:  # cold-only runs can't compare
            assert summary["warm_selection_us"] < summary["cold_selection_us"]

    def test_act_sparsity_stream_plans_ffn(self):
        cache = PlanCache()
        engine = make_engine(plan_cache=cache, max_batch_size=4)
        engine.submit(opt_inference_workload("125m", 4, seed=0))
        report = engine.run()
        # Two plans resolved: the token projection and the sparse-act FFN.
        assert report.batches[0].cache_misses == 2
        assert set(report.batches[0].plan_kinds) == {"proj", "ffn-act"}

    def test_attention_stream_plans_attention(self):
        """Serving resolves an attention plan from the workload's mask
        statistics through the same Planner as the projection plan."""
        cache = PlanCache()
        engine = make_engine(plan_cache=cache, max_batch_size=4)
        engine.submit(longformer_workload(seq_len=2048, batch_size=1, seed=0))
        report = engine.run()
        assert set(report.batches[0].plan_kinds) == {"proj", "attention"}
        kinds = report.selection_summary()["plans_by_kind"]
        assert kinds["attention"] == {"resolved": 1, "cold": 1}
        # A statistically alike request hits the cached attention plan.
        engine.submit(longformer_workload(seq_len=2048, batch_size=1, seed=5))
        report2 = engine.run()
        kinds2 = report2.selection_summary()["plans_by_kind"]
        assert kinds2["attention"] == {"resolved": 1, "cold": 0}

    def test_legacy_resolve_plan_shim_removed(self):
        """The one-release deprecation shim is gone: serving plans resolve
        only through ``ServingEngine.planner`` as PlanSpecs."""
        assert not hasattr(ServingEngine, "_resolve_plan")


class TestPlanPersistence:
    def test_saved_cache_serves_warm_in_a_fresh_engine(self, tmp_path):
        """The acceptance property: a fresh engine constructed from
        ``PlanCache.load`` of a previous engine's dump serves the same
        traffic with zero cold searches — across every plan kind."""
        def traffic():
            wls = [bert_workload("mnli", 4, seed=s) for s in range(2)]
            wls += [opt_inference_workload("125m", 2, seed=0)]
            wls += [longformer_workload(seq_len=2048, batch_size=1, seed=0)]
            wls += [switch_workload(8, 2, seed=0)]
            return wls

        path = tmp_path / "plans.json"
        cold_cache = PlanCache()
        engine = make_engine(plan_cache=cold_cache, enforce_memory=False)
        engine.submit_many(traffic(), interarrival_us=1000.0)
        cold_report = engine.run()
        assert cold_cache.misses > 0
        saved = engine.save_plan_cache(path)
        assert saved["entries"] > 0 and saved["skipped"] == 0

        loaded = PlanCache.load(
            path, expected_tiledb_key=engine.tiledb.cache_key
        )
        fresh = make_engine(plan_cache=loaded, enforce_memory=False)
        fresh.submit_many(traffic(), interarrival_us=1000.0)
        warm_report = fresh.run()
        assert loaded.misses == 0
        assert warm_report.selection_summary()["cold_batches"] == 0
        # Identical traffic, identical plan mix.
        assert {k: v["resolved"] for k, v in
                warm_report.selection_summary()["plans_by_kind"].items()} == \
               {k: v["resolved"] for k, v in
                cold_report.selection_summary()["plans_by_kind"].items()}

    def test_load_rejects_foreign_tiledb_dump(self, tmp_path):
        path = tmp_path / "plans.json"
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        engine.run()
        engine.save_plan_cache(path)
        from repro.hw import A100
        from repro.core import TileDB

        other = TileDB.shared(A100, "float32")
        with pytest.raises(ValueError, match="does not match"):
            PlanCache.load(path, expected_tiledb_key=other.cache_key)

    def test_pit_backend_shares_engine_plan_cache(self):
        engine = make_engine()
        assert engine.backend.plan_cache is engine.plan_cache

    def test_describe_mentions_hit_rate(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        report = engine.run()
        text = report.describe()
        assert "hit rate" in text
        assert "throughput" in text

    def test_run_drains_queue(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0))
        assert engine.pending() == 1
        engine.run()
        assert engine.pending() == 0

    def test_request_ids_are_stable(self):
        engine = make_engine()
        r1 = engine.submit(bert_workload("mnli", 4, seed=0))
        r2 = engine.submit(bert_workload("mnli", 4, seed=1))
        assert (r1.request_id, r2.request_id) == (0, 1)
        report = engine.run()
        assert [r.request_id for r in report.requests] == [0, 1]


class TestArrivalClock:
    def test_submit_many_continues_the_arrival_clock(self):
        """A second stream must not arrive before already-queued requests."""
        engine = make_engine()
        first = engine.submit_many(
            [bert_workload("mnli", 4, seed=s) for s in range(3)],
            interarrival_us=1000.0,
        )
        second = engine.submit_many(
            [bert_workload("mnli", 4, seed=s) for s in range(3)],
            interarrival_us=500.0,
        )
        latest_first = max(r.arrival_us for r in first)
        assert all(r.arrival_us > latest_first for r in second)
        arrivals = [r.arrival_us for r in first + second]
        assert arrivals == sorted(arrivals)

    def test_first_stream_starts_at_zero(self):
        engine = make_engine()
        out = engine.submit_many(
            [bert_workload("mnli", 4, seed=s) for s in range(3)],
            interarrival_us=250.0,
        )
        assert [r.arrival_us for r in out] == [0.0, 250.0, 500.0]

    def test_single_submit_advances_the_clock(self):
        engine = make_engine()
        engine.submit(bert_workload("mnli", 4, seed=0), arrival_us=9000.0)
        stream = engine.submit_many(
            [bert_workload("mnli", 4, seed=1)], interarrival_us=100.0
        )
        assert stream[0].arrival_us == pytest.approx(9100.0)


class TestFailureMetrics:
    @staticmethod
    def _report():
        from repro.runtime import RequestReport, ServingReport

        report = ServingReport()
        report.requests = [
            RequestReport(request_id=0, batch_id=0, tokens=100,
                          arrival_us=0.0, start_us=100.0, queue_us=100.0,
                          exec_us=900.0, selection_us=10.0),
            RequestReport(request_id=1, batch_id=1, tokens=100,
                          arrival_us=0.0, start_us=300.0, queue_us=300.0,
                          exec_us=700.0, selection_us=10.0),
            # A failed (OOM) request with an enormous apparent latency: it
            # must not leak into the SLO metrics.
            RequestReport(request_id=2, batch_id=2, tokens=100,
                          arrival_us=0.0, start_us=1e6, queue_us=1e6,
                          exec_us=1e6, selection_us=10.0, ok=False,
                          error="OOM"),
        ]
        report.makespan_us = 2000.0
        return report

    def test_latency_metrics_exclude_failed_requests(self):
        report = self._report()
        assert report.mean_latency_us == pytest.approx(1000.0)
        assert report.p95_latency_us == pytest.approx(1000.0)
        assert report.mean_queue_us == pytest.approx(200.0)
        assert report.p95_queue_us == pytest.approx(290.0)

    def test_failed_requests_counted_separately(self):
        report = self._report()
        assert report.failed_requests == 1
        assert report.completed_tokens == 200
        assert "failed: 1" in report.describe()

    def test_throughput_counts_only_completed_tokens(self):
        report = self._report()
        assert report.throughput_tokens_per_s == pytest.approx(
            200 / (2000.0 / 1e6)
        )


class TestSignatureQuantum:
    """The engine's plan-cache quantum governs co-batching tolerance.

    Regression: ``batch_signature`` used to hardcode ``SIGNATURE_QUANTUM``
    while plan specs quantized with ``plan_cache.quantum`` — an engine
    built with a non-default quantum co-batched at one tolerance and
    cached plans at another, so "compatible" requests could resolve to
    divergent plan signatures and silently defeat speculation.
    """

    @staticmethod
    def _attn_request(request_id, density):
        """A longformer request whose attention density is exactly set."""
        import dataclasses

        w = longformer_workload(seq_len=2048, batch_size=1, seed=0)
        nnz = int(round(density * w.attn_stats.seq ** 2))
        w.attn_stats = dataclasses.replace(w.attn_stats, nnz=nnz)
        return InferenceRequest(request_id, w)

    def test_default_quantum_buckets_together(self):
        a = self._attn_request(0, 0.300)
        b = self._attn_request(1, 0.306)
        assert a.batch_signature() == b.batch_signature()

    def test_finer_quantum_splits_the_bucket(self):
        a = self._attn_request(0, 0.300)
        b = self._attn_request(1, 0.306)
        assert a.batch_signature(0.01) != b.batch_signature(0.01)

    def test_engine_threads_its_quantum_into_batching(self):
        """With ``PlanCache(quantum=0.01)`` the engine must batch at the
        same 0.01 tolerance its plan specs quantize with: densities 0.300
        and 0.306 land in one bucket at the default 0.05 but different
        buckets at 0.01, so a fine-quantum engine keeps them apart."""
        coarse = make_engine(plan_cache=PlanCache())
        fine = make_engine(plan_cache=PlanCache(quantum=0.01))
        requests = [self._attn_request(0, 0.300), self._attn_request(1, 0.306)]
        assert [len(b) for b in coarse.plan_batches(requests)] == [2]
        assert sorted(
            len(b) for b in fine.plan_batches(requests)
        ) == [1, 1]

    def test_continuous_scheduler_uses_engine_quantum(self):
        import dataclasses

        engine = make_engine(
            plan_cache=PlanCache(quantum=0.01), batch_window_us=4000.0
        )
        for rid, density in ((0, 0.300), (1, 0.306)):
            w = longformer_workload(seq_len=2048, batch_size=1, seed=0)
            nnz = int(round(density * w.attn_stats.seq ** 2))
            w.attn_stats = dataclasses.replace(w.attn_stats, nnz=nnz)
            engine.submit(w, arrival_us=rid * 100.0)
        report = engine.run(policy="continuous")
        assert sorted(b.size for b in report.batches) == [1, 1]


class TestTokenMask:
    def test_tiny_density_keeps_one_live_row(self):
        """Regression: one real token in a heavily padded batch rounded to
        zero live rows, feeding Algorithm 1 an all-false mask for a
        non-empty workload."""
        from repro.models.config import bert_base

        from repro.models.workloads import Workload

        engine = make_engine()
        # One 4096-token sequence among 4095 single-token ones: density
        # 8191 / (4096 * 4096) ~ 0.0005, which rounds to zero live rows.
        lengths = np.array([4096] + [1] * 4095)
        w = Workload(config=bert_base(), lengths=lengths)
        assert 0 < w.total_tokens / (w.max_len * w.batch_size) < 1 / 1024
        mask = engine._token_mask(w)
        assert mask.any()
        # Exactly the clamped single row, not some larger artifact.
        assert mask.sum() == mask.shape[1]

    def test_empty_workload_mask_stays_empty(self):
        from repro.models.config import bert_base

        from repro.models.workloads import Workload

        engine = make_engine()
        w = Workload(config=bert_base(), lengths=np.array([], dtype=int))
        assert not engine._token_mask(w).any()


class TestHeterogeneousEngine:
    def test_distinct_device_classes_share_backends(self):
        from repro.hw import A100

        engine = make_engine(replica_specs=[A100, A100, V100])
        assert engine.replicas == 3
        assert len(engine.device_classes) == 2
        # Replicas of one class share the backend/TileDB/planner.
        d0, d1, d2 = (engine.device_for_replica(i) for i in range(3))
        assert d0 is d1
        assert d2 is not d0
        assert d0.tiledb.cache_key != d2.tiledb.cache_key

    def test_homogeneous_shorthand_is_one_class(self):
        engine = make_engine(replicas=3)
        assert engine.replicas == 3
        assert len(engine.device_classes) == 1
        assert engine.replica_specs == [V100, V100, V100]
        assert engine.device_for_replica(1).backend is engine.backend

    def test_conflicting_replica_counts_rejected(self):
        from repro.hw import A100

        with pytest.raises(ValueError, match="contradicts"):
            make_engine(replicas=3, replica_specs=[A100, V100])
        with pytest.raises(ValueError, match="at least one"):
            make_engine(replica_specs=[])
        with pytest.raises(ValueError, match="placement"):
            make_engine(placement="round-robin")

    def test_plan_resolution_targets_the_replica_device(self):
        """A batch executed on a V100 replica of an A100-primary engine
        resolves plans against the V100 tile database (and the resolved
        plan records that provenance)."""
        from repro.hw import A100

        engine = ServingEngine(
            A100,
            replica_specs=[A100, V100],
            max_batch_tokens=8192,
            max_batch_size=8,
        )
        w = bert_workload("mnli", 4, seed=0)
        plans, _, _, _ = engine._select_plans(
            w, engine.device_for_replica(1)
        )
        assert all(
            p.spec.tiledb_key == engine.device_for_replica(1).tiledb.cache_key
            for p in plans.values()
        )
        assert all(p.device == V100.name for p in plans.values())

    def test_estimate_exec_memoizes_per_class(self):
        from repro.hw import A100

        engine = make_engine(replica_specs=[V100, A100])
        w = bert_workload("mnli", 4, seed=0)
        sig = InferenceRequest(0, w).batch_signature(
            engine.plan_cache.quantum
        )
        slow = engine.estimate_exec_us(sig, w, engine.device_for_replica(0))
        fast = engine.estimate_exec_us(sig, w, engine.device_for_replica(1))
        # A100 beats V100 on every axis, so the analytical estimate must
        # order the classes.
        assert fast < slow
        assert len(engine._exec_estimates) == 2
        engine.estimate_exec_us(sig, w, engine.device_for_replica(0))
        assert len(engine._exec_estimates) == 2

    def test_transient_estimates_do_not_seed_the_memo(self):
        """The scheduler's batch-open prediction prices with a single
        request (memoize=False): that must not install an entry the
        dispatch-time merged-batch pricing would then reuse."""
        engine = make_engine(replicas=2)
        w = bert_workload("mnli", 4, seed=0)
        sig = InferenceRequest(0, w).batch_signature(
            engine.plan_cache.quantum
        )
        solo = engine.estimate_exec_us(
            sig, w, engine.device_for_replica(0), memoize=False
        )
        assert solo > 0
        assert len(engine._exec_estimates) == 0
        merged = merge_workloads([w, bert_workload("mnli", 4, seed=1)])
        est = engine.estimate_exec_us(
            sig, merged, engine.device_for_replica(0)
        )
        assert len(engine._exec_estimates) == 1
        # The memoized value is the merged batch's price, not the solo one.
        assert est > solo

    def test_pricing_does_not_touch_the_plan_cache(self):
        from repro.hw import A100

        cache = PlanCache()
        engine = make_engine(replica_specs=[V100, A100], plan_cache=cache)
        w = bert_workload("mnli", 4, seed=0)
        sig = InferenceRequest(0, w).batch_signature(cache.quantum)
        before = (cache.hits, cache.misses, len(cache))
        for i in range(2):
            engine.estimate_exec_us(sig, w, engine.device_for_replica(i))
        assert (cache.hits, cache.misses, len(cache)) == before


class TestRequestSignatures:
    def test_same_model_same_signature(self):
        a = InferenceRequest(0, bert_workload("mnli", 4, seed=0))
        b = InferenceRequest(1, bert_workload("mnli", 4, seed=5))
        assert a.batch_signature() == b.batch_signature()

    def test_act_sparsity_changes_signature(self):
        a = InferenceRequest(0, opt_inference_workload("125m", 2, seed=0))
        b = InferenceRequest(
            1, opt_inference_workload("125m", 2, act_sparsity=0.5, seed=0)
        )
        assert a.batch_signature() != b.batch_signature()

    def test_attention_stats_quantized(self):
        """Longformer masks jitter seed to seed; same config must bucket."""
        a = InferenceRequest(0, longformer_workload(seq_len=2048, seed=0))
        b = InferenceRequest(1, longformer_workload(seq_len=2048, seed=3))
        assert a.batch_signature() == b.batch_signature()
